// Package telemetry provides campaign observability: a small,
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms with a stable-ordered Snapshot), a buffered
// per-cell JSONL trace writer, and an HTTP handler exposing the registry
// in Prometheus text format alongside expvar and net/http/pprof.
//
// Everything is nil-safe: every method on a nil *Registry, *Counter,
// *Gauge, *Histogram, *Tracer or *Campaign returns immediately and
// allocates nothing, so the campaign hot path can call telemetry
// unconditionally and a disabled campaign costs zero (enforced by
// TestDisabledSamplePathZeroAllocs).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DurationBuckets is the default latency histogram layout, in seconds:
// exponential from 1 ms to 30 s, sized for per-injection sample times
// (typically milliseconds) through whole-cell runtimes.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram counts observations in fixed buckets (plus an implicit +Inf
// bucket) and tracks their sum, all lock-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-added
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// merge folds externally-accumulated observations into the histogram: one
// non-negative count delta per bucket (+Inf last, len(bounds)+1 entries)
// and the corresponding value-sum delta. The federation path uses it to
// republish worker histograms; a length mismatch drops the batch rather
// than corrupting bucket alignment.
func (h *Histogram) merge(deltas []int64, sumDelta float64) {
	if h == nil || len(deltas) != len(h.buckets) {
		return
	}
	var n int64
	for i, d := range deltas {
		if d <= 0 {
			continue
		}
		h.buckets[i].Add(d)
		n += d
	}
	if n == 0 && sumDelta == 0 {
		return
	}
	h.count.Add(n)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+sumDelta)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry is a named collection of metrics. Collectors are created on
// first use and live for the registry's lifetime; Snapshot and
// WritePrometheus render a consistent, stable-ordered view at any time,
// including while the campaign is still recording.
//
// Metric names may embed Prometheus-style labels directly, e.g.
// `samples_total{outcome="masked"}`: the registry treats the full string
// as the key and the exporters emit it verbatim (merging histogram `le`
// labels as needed).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls reuse the original layout). A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// Kind discriminates metric types in a Snapshot.
type Kind int

// Metric kinds, in Snapshot order within one name collision class.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Bucket is one cumulative histogram bucket: the count of observations at
// or below UpperBound.
type Bucket struct {
	UpperBound float64
	Count      int64
}

// Metric is one entry of a registry snapshot.
type Metric struct {
	Name    string
	Kind    Kind
	Value   float64  // counter/gauge value; histogram sum
	Count   int64    // histogram observation count
	Buckets []Bucket // histogram only; cumulative, +Inf last
}

// Snapshot returns every metric sorted by name (stable across calls), so
// exporters, tests and the status line see a deterministic view. A nil
// registry returns nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: float64(g.Value())})
	}
	for name, h := range r.histograms {
		m := Metric{Name: name, Kind: KindHistogram, Value: h.Sum(), Count: h.Count()}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			m.Buckets = append(m.Buckets, Bucket{UpperBound: b, Count: cum})
		}
		cum += h.buckets[len(h.bounds)].Load()
		m.Buckets = append(m.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum})
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, histograms
// expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, m := range r.Snapshot() {
		family := baseName(m.Name)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, m.Kind); err != nil {
				return err
			}
			lastFamily = family
		}
		switch m.Kind {
		case KindHistogram:
			for _, b := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = formatFloat(b.UpperBound)
				}
				labels := withLabel(m.Name, `le="`+le+`"`)[len(family):]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, labels, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", m.Name, formatFloat(m.Value)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", m.Name, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatFloat(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// baseName strips an embedded label set: `x_total{a="b"}` -> `x_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel merges one extra label pair into a possibly-labeled name:
// withLabel(`x{a="b"}`, `le="1"`) -> `x{a="b",le="1"}`.
func withLabel(name, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// formatFloat renders a float the way Prometheus clients expect: integral
// values without an exponent or trailing zeros.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
