package tlb

import (
	"math/bits"
	"slices"
)

// Snapshot is a deep copy of a TLB's mutable state. It is immutable once
// taken and can be restored into any TLB with the same entry count any
// number of times.
type Snapshot struct {
	entries []uint32
	nextRR  int
	mru     int

	hits, missCount uint64
}

// Snapshot captures the full TLB state.
func (t *TLB) Snapshot() *Snapshot {
	return &Snapshot{
		entries:   append([]uint32(nil), t.entries...),
		nextRR:    t.nextRR,
		mru:       t.mru,
		hits:      t.Hits,
		missCount: t.MissCount,
	}
}

// Restore overwrites the TLB state with the snapshot's. The TLB must have
// the entry count the snapshot was taken from; a mismatch is a programming
// error and panics.
func (t *TLB) Restore(s *Snapshot) {
	if len(s.entries) != len(t.entries) {
		panic("tlb: restore into mismatched entry count")
	}
	copy(t.entries, s.entries)
	t.nextRR = s.nextRR
	t.mru = s.mru
	t.Hits = s.hits
	t.MissCount = s.missCount
}

// EqualsSnapshot reports whether the TLB state bit-equals the snapshot
// (convergence-exit support). The MRU hint and counters are real state
// here: the MRU entry wins lookups when a corrupted VPN aliases another
// page, so two TLBs must agree on it to behave identically.
func (t *TLB) EqualsSnapshot(s *Snapshot) bool {
	return t.nextRR == s.nextRR && t.mru == s.mru &&
		t.Hits == s.hits && t.MissCount == s.missCount &&
		slices.Equal(t.entries, s.entries)
}

// TrackDirty arms dirty tracking: every entry mutated from now on
// (inserted, invalidated or fault-flipped) is marked, and RestoreDirty can
// rewind the TLB to the snapshot it currently equals by restoring only the
// marked entries. Arming (or re-arming) clears the dirty set, so call it
// only when the TLB bit-equals the snapshot RestoreDirty will be given.
func (t *TLB) TrackDirty() {
	words := (len(t.entries) + 63) / 64
	if len(t.touched) != words {
		t.touched = make([]uint64, words)
	} else {
		for i := range t.touched {
			t.touched[i] = 0
		}
	}
	t.track = true
}

// RestoreDirty rewinds the TLB to snapshot s by restoring only the entries
// mutated since TrackDirty was last armed (the replacement pointer, MRU
// hint and hit/miss counters are scalars and always restored), then
// re-arms tracking. Only correct when the TLB bit-equalled s at arm time.
func (t *TLB) RestoreDirty(s *Snapshot) {
	if len(s.entries) != len(t.entries) {
		panic("tlb: delta restore into mismatched entry count")
	}
	if !t.track {
		t.Restore(s)
		t.TrackDirty()
		return
	}
	for wi, word := range t.touched {
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			t.entries[i] = s.entries[i]
		}
		t.touched[wi] = 0
	}
	t.nextRR = s.nextRR
	t.mru = s.mru
	t.Hits = s.hits
	t.MissCount = s.missCount
}
