package tlb

// Snapshot is a deep copy of a TLB's mutable state. It is immutable once
// taken and can be restored into any TLB with the same entry count any
// number of times.
type Snapshot struct {
	entries []uint32
	nextRR  int
	mru     int

	hits, missCount uint64
}

// Snapshot captures the full TLB state.
func (t *TLB) Snapshot() *Snapshot {
	return &Snapshot{
		entries:   append([]uint32(nil), t.entries...),
		nextRR:    t.nextRR,
		mru:       t.mru,
		hits:      t.Hits,
		missCount: t.MissCount,
	}
}

// Restore overwrites the TLB state with the snapshot's. The TLB must have
// the entry count the snapshot was taken from; a mismatch is a programming
// error and panics.
func (t *TLB) Restore(s *Snapshot) {
	if len(s.entries) != len(t.entries) {
		panic("tlb: restore into mismatched entry count")
	}
	copy(t.entries, s.entries)
	t.nextRR = s.nextRR
	t.mru = s.mru
	t.Hits = s.hits
	t.MissCount = s.missCount
}
