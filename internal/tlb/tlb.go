// Package tlb implements the fully-associative translation look-aside
// buffers of the simulated CPU with bit-accurate, fault-injectable entries.
//
// Each of the 32 entries is a packed 32-bit word (the paper's Table VIII
// sizes both TLBs at 1024 bits = 32 entries x 32 bits):
//
//	bit  31:     valid
//	bit  30:     writable
//	bit  29:     user accessible
//	bits 28..15: virtual page number  (VA space is 16 MB of 1 KB pages)
//	bits 14..1:  physical frame number (one bit wider than RAM needs, so
//	             corrupted frame numbers can leave the system map)
//	bit   0:     (spare)
//
// Pages are 1 KB rather than the 4 KB of a production kernel: the
// workloads are scaled-down MiBench analogs, and scaling the page size
// with them preserves the TLB pressure (hot-entry occupancy) that the
// paper's full-system runs exhibit. The spare bit really exists in the
// injectable geometry; flips there are naturally masked, as in a real
// array with unused columns.
package tlb

import "fmt"

// Entry field layout.
const (
	bitValid    = 31
	bitWritable = 30
	bitUser     = 29
	vpnShift    = 15
	vpnMask     = 0x3FFF // 14 bits
	pfnShift    = 1
	pfnMask     = 0x3FFF // 14 bits

	// PageShift is log2 of the page size.
	PageShift = 10
	// PageSize is the virtual-memory page size shared by the TLBs, walker
	// and kernel.
	PageSize = 1 << PageShift
	// MaxVPN is the largest representable virtual page number.
	MaxVPN = vpnMask
)

// EntryBits is the width of one packed entry.
const EntryBits = 32

// ColClass categorizes an entry-bit column by how lookups consult it.
type ColClass int

const (
	// ColCAM bits (valid + VPN) are compared by every lookup: the TLB is a
	// content-addressable memory, so one access consults them in all
	// entries at once.
	ColCAM ColClass = iota
	// ColPayload bits (PFN, writable, user) enter the datapath only when
	// their entry hits.
	ColPayload
	// ColSpare bits are never consulted; flips there are naturally masked.
	ColSpare
)

// ClassifyCol reports how lookups consult the given entry-bit column.
func ClassifyCol(col int) ColClass {
	switch {
	case col == bitValid || (col >= vpnShift && col < vpnShift+14):
		return ColCAM
	case col == 0:
		return ColSpare
	default:
		return ColPayload
	}
}

// Probe observes the TLB's bit-level accesses for fault forensics.
// Implementations must not mutate TLB state; a nil probe (the default)
// costs one pointer compare per event.
type Probe interface {
	// OnTLBLookup fires on every lookup with the index of the hit entry,
	// or -1 on a miss. The CAM compare consults the valid + VPN bits of
	// every entry regardless of the result.
	OnTLBLookup(hit int)
	// OnTLBInsert fires when entry row is overwritten by a new translation.
	OnTLBInsert(row int)
	// OnTLBInvalidate fires when every entry is cleared.
	OnTLBInvalidate()
}

// Pack builds a packed TLB entry.
func Pack(vpn, pfn uint32, writable, user bool) uint32 {
	e := uint32(1)<<bitValid | (vpn&vpnMask)<<vpnShift | (pfn&pfnMask)<<pfnShift
	if writable {
		e |= 1 << bitWritable
	}
	if user {
		e |= 1 << bitUser
	}
	return e
}

// Translation is the result of a TLB hit.
type Translation struct {
	PFN      uint32
	Writable bool
	User     bool
}

// TLB is a fully-associative translation buffer with round-robin
// replacement. It is not safe for concurrent use.
type TLB struct {
	name    string
	entries []uint32
	nextRR  int
	mru     int // index of the last hit, checked first (pure speedup:
	// the entry bits are re-read and re-validated on every lookup)
	probe Probe

	// Dirty tracking for delta restore: when armed (TrackDirty), every
	// mutated entry is marked in the bitmap and RestoreDirty rewinds only
	// those entries (the scalars are always restored; they change on every
	// lookup). Disarmed by default.
	track   bool
	touched []uint64 // 1 bit per entry

	Hits, MissCount uint64
}

// New returns a TLB with n entries.
func New(name string, n int) *TLB {
	return &TLB{name: name, entries: make([]uint32, n)}
}

// SetProbe installs (or removes, with nil) the forensics probe.
func (t *TLB) SetProbe(p Probe) { t.probe = p }

// Lookup searches for vpn. The first matching valid entry wins; a corrupted
// VPN field can therefore alias another page, exactly the failure mode the
// paper attributes to TLB upsets.
func (t *TLB) Lookup(vpn uint32) (Translation, bool) {
	vpn &= vpnMask
	if e := t.entries[t.mru]; e>>bitValid&1 == 1 && e>>vpnShift&vpnMask == vpn {
		t.Hits++
		if t.probe != nil {
			t.probe.OnTLBLookup(t.mru)
		}
		return unpack(e), true
	}
	for i, e := range t.entries {
		if e>>bitValid&1 == 1 && e>>vpnShift&vpnMask == vpn {
			t.Hits++
			t.mru = i
			if t.probe != nil {
				t.probe.OnTLBLookup(i)
			}
			return unpack(e), true
		}
	}
	t.MissCount++
	if t.probe != nil {
		t.probe.OnTLBLookup(-1)
	}
	return Translation{}, false
}

func unpack(e uint32) Translation {
	return Translation{
		PFN:      e >> pfnShift & pfnMask,
		Writable: e>>bitWritable&1 == 1,
		User:     e>>bitUser&1 == 1,
	}
}

// markEntry records entry i as mutated since TrackDirty was armed.
func (t *TLB) markEntry(i int) {
	if t.track {
		t.touched[i>>6] |= 1 << (i & 63)
	}
}

// Insert installs a translation, evicting round-robin.
func (t *TLB) Insert(vpn, pfn uint32, writable, user bool) {
	if t.probe != nil {
		t.probe.OnTLBInsert(t.nextRR)
	}
	t.markEntry(t.nextRR)
	t.entries[t.nextRR] = Pack(vpn, pfn, writable, user)
	t.nextRR = (t.nextRR + 1) % len(t.entries)
}

// Invalidate clears every entry.
func (t *TLB) Invalidate() {
	if t.probe != nil {
		t.probe.OnTLBInvalidate()
	}
	for i := range t.entries {
		t.markEntry(i)
		t.entries[i] = 0
	}
}

// Entry returns the raw packed entry at index i (test use).
func (t *TLB) Entry(i int) uint32 { return t.entries[i] }

// ValidAt reports the valid bit of entry i without firing the access
// probe (sampling use).
func (t *TLB) ValidAt(i int) bool { return t.entries[i]>>bitValid&1 == 1 }

// --- Fault-injection geometry (core.Target implementation) ---

// Name returns the component name used by the fault injector.
func (t *TLB) Name() string { return t.name }

// Rows returns the number of entries.
func (t *TLB) Rows() int { return len(t.entries) }

// Cols returns the entry width in bits.
func (t *TLB) Cols() int { return EntryBits }

// FlipBit flips bit col of entry row.
func (t *TLB) FlipBit(row, col int) {
	if row < 0 || row >= len(t.entries) || col < 0 || col >= EntryBits {
		panic(fmt.Sprintf("tlb %s: FlipBit(%d,%d) out of range", t.name, row, col))
	}
	t.markEntry(row)
	t.entries[row] ^= 1 << col
}

// Occupancy returns the fraction of valid entries (diagnostics and tests).
func (t *TLB) Occupancy() float64 {
	n := 0
	for _, e := range t.entries {
		if e>>bitValid&1 == 1 {
			n++
		}
	}
	return float64(n) / float64(len(t.entries))
}
