package tlb

import (
	"fmt"

	"mbusim/internal/wire"
)

// EncodeWire appends the snapshot's complete state to w in the artifact
// wire format (field order versioned by sim.SnapshotFormat).
func (s *Snapshot) EncodeWire(w *wire.Writer) {
	w.Int(len(s.entries))
	for _, e := range s.entries {
		w.U32(e)
	}
	w.Int(s.nextRR)
	w.Int(s.mru)
	w.U64(s.hits)
	w.U64(s.missCount)
}

// maxWireEntries bounds the entry count a decoded TLB snapshot may claim.
const maxWireEntries = 1 << 16

// DecodeSnapshotWire reads a snapshot encoded by EncodeWire.
func DecodeSnapshotWire(r *wire.Reader) (*Snapshot, error) {
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > maxWireEntries {
		return nil, fmt.Errorf("tlb: snapshot entry count %d out of range", n)
	}
	s := &Snapshot{entries: make([]uint32, n)}
	for i := range s.entries {
		s.entries[i] = r.U32()
	}
	s.nextRR = r.Int()
	s.mru = r.Int()
	s.hits = r.U64()
	s.missCount = r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
