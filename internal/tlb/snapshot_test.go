package tlb

import (
	"reflect"
	"testing"
)

func TestTLBSnapshotRoundTrip(t *testing.T) {
	tl := New("DTLB", 8)
	for i := uint32(0); i < 10; i++ { // wraps the round-robin pointer
		tl.Insert(i, i+100, i%2 == 0, true)
	}
	tl.Lookup(5) // sets mru and the hit counter
	tl.Lookup(9999)

	s := tl.Snapshot()
	want := append([]uint32(nil), tl.entries...)
	wantRR, wantMRU, wantHits, wantMiss := tl.nextRR, tl.mru, tl.Hits, tl.MissCount

	tl.Invalidate()
	tl.Lookup(1)
	tl.Restore(s)

	if !reflect.DeepEqual(tl.entries, want) {
		t.Fatal("restored entries differ")
	}
	if tl.nextRR != wantRR || tl.mru != wantMRU || tl.Hits != wantHits || tl.MissCount != wantMiss {
		t.Fatal("restored bookkeeping differs")
	}
}

func TestTLBSnapshotNoAliasing(t *testing.T) {
	tl := New("ITLB", 4)
	tl.Insert(1, 11, true, true)
	s := tl.Snapshot()

	t2 := New("ITLB", 4)
	t2.Restore(s)
	t2.FlipBit(0, 31)
	t2.Insert(3, 33, false, false)

	t3 := New("ITLB", 4)
	t3.Restore(s)
	if t3.Entry(0) != tl.Entry(0) {
		t.Fatal("snapshot mutated through a restored TLB")
	}
	if _, hit := t3.Lookup(3); hit {
		t.Fatal("insert into restored TLB leaked into the snapshot")
	}
}

func TestTLBSnapshotSizeMismatchPanics(t *testing.T) {
	s := New("DTLB", 4).Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched entry count")
		}
	}()
	New("DTLB", 8).Restore(s)
}
