package tlb

import (
	"reflect"
	"testing"
)

func TestTLBSnapshotRoundTrip(t *testing.T) {
	tl := New("DTLB", 8)
	for i := uint32(0); i < 10; i++ { // wraps the round-robin pointer
		tl.Insert(i, i+100, i%2 == 0, true)
	}
	tl.Lookup(5) // sets mru and the hit counter
	tl.Lookup(9999)

	s := tl.Snapshot()
	want := append([]uint32(nil), tl.entries...)
	wantRR, wantMRU, wantHits, wantMiss := tl.nextRR, tl.mru, tl.Hits, tl.MissCount

	tl.Invalidate()
	tl.Lookup(1)
	tl.Restore(s)

	if !reflect.DeepEqual(tl.entries, want) {
		t.Fatal("restored entries differ")
	}
	if tl.nextRR != wantRR || tl.mru != wantMRU || tl.Hits != wantHits || tl.MissCount != wantMiss {
		t.Fatal("restored bookkeeping differs")
	}
}

func TestTLBSnapshotNoAliasing(t *testing.T) {
	tl := New("ITLB", 4)
	tl.Insert(1, 11, true, true)
	s := tl.Snapshot()

	t2 := New("ITLB", 4)
	t2.Restore(s)
	t2.FlipBit(0, 31)
	t2.Insert(3, 33, false, false)

	t3 := New("ITLB", 4)
	t3.Restore(s)
	if t3.Entry(0) != tl.Entry(0) {
		t.Fatal("snapshot mutated through a restored TLB")
	}
	if _, hit := t3.Lookup(3); hit {
		t.Fatal("insert into restored TLB leaked into the snapshot")
	}
}

func TestTLBSnapshotSizeMismatchPanics(t *testing.T) {
	s := New("DTLB", 4).Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched entry count")
		}
	}()
	New("DTLB", 8).Restore(s)
}

// TestTLBDeltaRestoreRoundTrip pins the dirty-tracking contract: after
// arming at a snapshot-equal state, inserts, invalidations, lookups and
// fault flips are all rewound exactly by RestoreDirty, repeatedly.
func TestTLBDeltaRestoreRoundTrip(t *testing.T) {
	tl := New("DTLB", 32)
	for i := 0; i < 10; i++ {
		tl.Insert(uint32(i), uint32(i+100), true, i%2 == 0)
	}
	tl.Lookup(3)
	s := tl.Snapshot()

	tl.TrackDirty()
	for round := 0; round < 3; round++ {
		tl.Insert(99, 7, false, false)
		tl.FlipBit(4, 31)
		tl.Lookup(5) // moves the MRU hint and the hit counter
		tl.Lookup(2000)
		if round == 1 {
			tl.Invalidate()
		}
		tl.RestoreDirty(s)
		if !tl.EqualsSnapshot(s) {
			t.Fatalf("round %d: EqualsSnapshot false after delta restore", round)
		}
		if !reflect.DeepEqual(tl.Snapshot(), s) {
			t.Fatalf("round %d: delta-restored TLB re-snapshots differently", round)
		}
	}

	// Untracked TLB: RestoreDirty falls back to a full restore and arms.
	t2 := New("DTLB", 32)
	t2.Insert(7, 7, true, true)
	t2.RestoreDirty(s)
	if !reflect.DeepEqual(t2.Snapshot(), s) {
		t.Fatal("untracked RestoreDirty fallback differs from the snapshot")
	}
	t2.FlipBit(0, 0)
	t2.RestoreDirty(s)
	if !reflect.DeepEqual(t2.Snapshot(), s) {
		t.Fatal("armed-by-fallback delta restore differs from the snapshot")
	}
}

// TestTLBEqualsSnapshot: the equality check accepts the snapshotted state
// and rejects entry and metadata differences.
func TestTLBEqualsSnapshot(t *testing.T) {
	tl := New("ITLB", 32)
	tl.Insert(1, 2, true, true)
	tl.Insert(3, 4, false, true)
	tl.Lookup(1)
	s := tl.Snapshot()
	if !tl.EqualsSnapshot(s) {
		t.Fatal("TLB does not equal its own snapshot")
	}
	tl.FlipBit(0, 15)
	if tl.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot missed a flipped entry bit")
	}
	tl.FlipBit(0, 15)
	if !tl.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot false after undoing the flip")
	}
	tl.Lookup(3) // moves the MRU hint
	if tl.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot missed a moved MRU hint")
	}
}
