package tlb

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPackRoundTrip(t *testing.T) {
	f := func(vpn, pfn uint32, w, u bool) bool {
		vpn &= 0x3FFF
		pfn &= 0x3FFF
		tl := New("T", 4)
		tl.Insert(vpn, pfn, w, u)
		tr, ok := tl.Lookup(vpn)
		return ok && tr.PFN == pfn && tr.Writable == w && tr.User == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMissOnEmpty(t *testing.T) {
	tl := New("T", 32)
	if _, ok := tl.Lookup(5); ok {
		t.Fatal("hit in empty TLB")
	}
	if tl.MissCount != 1 {
		t.Fatalf("miss count = %d", tl.MissCount)
	}
}

func TestRoundRobinReplacement(t *testing.T) {
	tl := New("T", 4)
	for vpn := uint32(0); vpn < 4; vpn++ {
		tl.Insert(vpn, vpn+100, true, true)
	}
	// Fifth insert overwrites the first slot.
	tl.Insert(4, 104, true, true)
	if _, ok := tl.Lookup(0); ok {
		t.Fatal("oldest entry should have been replaced")
	}
	for vpn := uint32(1); vpn <= 4; vpn++ {
		if _, ok := tl.Lookup(vpn); !ok {
			t.Fatalf("vpn %d missing", vpn)
		}
	}
}

func TestInvalidate(t *testing.T) {
	tl := New("T", 8)
	tl.Insert(1, 2, true, true)
	tl.Invalidate()
	if _, ok := tl.Lookup(1); ok {
		t.Fatal("entry survived invalidate")
	}
	if tl.Occupancy() != 0 {
		t.Fatal("occupancy nonzero after invalidate")
	}
}

func TestFlipValidBitDropsEntry(t *testing.T) {
	tl := New("T", 4)
	tl.Insert(7, 9, true, true)
	tl.FlipBit(0, 31)
	if _, ok := tl.Lookup(7); ok {
		t.Fatal("flipped-invalid entry still hits")
	}
}

func TestFlipPFNBitCorruptsTranslation(t *testing.T) {
	tl := New("T", 4)
	tl.Insert(7, 0, true, true)
	tl.FlipBit(0, 1) // lowest PFN bit
	tr, ok := tl.Lookup(7)
	if !ok || tr.PFN != 1 {
		t.Fatalf("corrupted PFN lookup: ok=%v pfn=%d", ok, tr.PFN)
	}
	// High PFN bit: frame leaves the 8K-frame system map.
	tl.FlipBit(0, 14)
	tr, _ = tl.Lookup(7)
	if tr.PFN < 8192 {
		t.Fatalf("high PFN flip stayed in the system map: %d", tr.PFN)
	}
}

func TestFlipVPNBitAliasesAnotherPage(t *testing.T) {
	tl := New("T", 4)
	tl.Insert(6, 50, true, true)
	tl.FlipBit(0, 15) // lowest VPN bit: entry now claims vpn 7
	if _, ok := tl.Lookup(6); ok {
		t.Fatal("original vpn still matches")
	}
	tr, ok := tl.Lookup(7)
	if !ok || tr.PFN != 50 {
		t.Fatal("aliased vpn must hit with the old frame")
	}
}

func TestFlipSpareBitIsMasked(t *testing.T) {
	tl := New("T", 4)
	tl.Insert(3, 4, true, false)
	before, _ := tl.Lookup(3)
	tl.FlipBit(0, 0) // spare bit
	after, ok := tl.Lookup(3)
	if !ok || before != after {
		t.Fatal("spare bit flip changed the translation")
	}
}

func TestOccupancyCountsValidEntries(t *testing.T) {
	tl := New("T", 8)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 3; i++ {
		tl.Insert(rng.Uint32()&0x3FFF, rng.Uint32()&0x3FFF, true, true)
	}
	if got := tl.Occupancy(); got != 3.0/8.0 {
		t.Fatalf("occupancy = %f", got)
	}
}

func TestGeometry(t *testing.T) {
	tl := New("DTLB", 32)
	if tl.Rows() != 32 || tl.Cols() != 32 {
		t.Fatalf("geometry %dx%d, want 32x32 (Table VIII: 1024 bits)", tl.Rows(), tl.Cols())
	}
	if tl.Name() != "DTLB" {
		t.Fatal("name mismatch")
	}
}

func TestFlipOutOfRangePanics(t *testing.T) {
	tl := New("T", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tl.FlipBit(4, 0)
}

// TestClassifyColLayout pins the CAM/payload/spare column classification
// the forensics tracker relies on: valid + VPN bits are CAM-compared by
// every lookup, PFN/writable/user enter the datapath only on a hit, and
// the spare column is never consulted.
func TestClassifyColLayout(t *testing.T) {
	for col := 0; col < EntryBits; col++ {
		want := ColPayload
		switch {
		case col == 0:
			want = ColSpare
		case col == 31 || (col >= 15 && col <= 28): // valid, VPN[13:0]
			want = ColCAM
		}
		if got := ClassifyCol(col); got != want {
			t.Errorf("ClassifyCol(%d) = %v, want %v", col, got, want)
		}
	}
}
