package isa

import "fmt"

var condNames = map[Cond]string{
	CondAL: "", CondEQ: ".eq", CondNE: ".ne", CondLT: ".lt", CondGE: ".ge",
	CondLE: ".le", CondGT: ".gt", CondLO: ".lo", CondHS: ".hs",
	CondLS: ".ls", CondHI: ".hi",
}

// Disassemble renders a raw instruction word at address pc as assembler
// syntax. Undefined encodings render as ".word 0x…".
func Disassemble(pc, w uint32) string {
	in, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word 0x%08X", w)
	}
	name := opName[in.Op]
	r := func(n uint8) string { return fmt.Sprintf("r%d", n) }
	switch in.Op {
	case OpMOV, OpMVN:
		return fmt.Sprintf("%s %s, %s", name, r(in.Rd), r(in.Rm))
	case OpMOVZ, OpMOVT:
		return fmt.Sprintf("%s %s, #0x%X", name, r(in.Rd), uint32(in.Imm))
	case OpCMP, OpTST:
		return fmt.Sprintf("%s %s, %s", name, r(in.Rn), r(in.Rm))
	case OpCMPI:
		return fmt.Sprintf("%s %s, #%d", name, r(in.Rn), in.Imm)
	case OpLDR, OpLDRB, OpLDRH, OpSTR, OpSTRB, OpSTRH:
		return fmt.Sprintf("%s %s, [%s, #%d]", name, r(in.Rd), r(in.Rn), in.Imm)
	case OpLDRR, OpLDRBR, OpSTRR, OpSTRBR:
		return fmt.Sprintf("%s %s, [%s, %s]", name, r(in.Rd), r(in.Rn), r(in.Rm))
	case OpB:
		return fmt.Sprintf("b%s 0x%X", condNames[in.Cond], pc+4+uint32(in.Imm)*4)
	case OpBL:
		return fmt.Sprintf("bl 0x%X", pc+4+uint32(in.Imm)*4)
	case OpBX, OpBLX:
		return fmt.Sprintf("%s %s", name, r(in.Rm))
	case OpSYSCALL, OpNOP:
		return name
	}
	switch in.Class {
	case ClassALU:
		if in.Rm != NoReg {
			return fmt.Sprintf("%s %s, %s, %s", name, r(in.Rd), r(in.Rn), r(in.Rm))
		}
		return fmt.Sprintf("%s %s, %s, #%d", name, r(in.Rd), r(in.Rn), in.Imm)
	}
	return fmt.Sprintf(".word 0x%08X", w)
}
