// Package isa defines AR32, the 32-bit ARM-like instruction set executed by
// the simulated CPU. AR32 keeps the structural properties that matter for
// fault-effect studies: a dense but not full opcode space (random bit flips
// in instruction words frequently produce undefined instructions), register
// fields wider than the register file (flips can produce invalid register
// numbers), condition codes on an NZCV flag register, and fixed 32-bit
// encodings.
//
// Encoding formats (bit 31 is the most significant):
//
//	R-type:  op[31:26] rd[25:21] rn[20:16] rm[15:11] zero[10:0]
//	I-type:  op[31:26] rd[25:21] rn[20:16] imm16[15:0]   (signed unless noted)
//	B-type:  op[31:26] cond[25:22] off22[21:0]           (signed word offset)
//	BL:      op[31:26] off26[25:0]                       (signed word offset)
package isa

import "fmt"

// Architectural registers. AR32 has 16 general purpose registers plus a
// condition flag register that is renamed like any other register.
const (
	NumGPR   = 16 // r0..r15
	RegSP    = 13 // stack pointer
	RegLR    = 14 // link register
	RegFlags = 16 // architectural index of the NZCV flag register
	NumArch  = 17 // GPRs + flags
	RegSys   = 7  // syscall number register (ARM EABI convention)
)

// Op is an AR32 opcode (the 6-bit primary opcode field).
type Op uint8

// Opcode space. Gaps are deliberate: encodings whose opcode field falls in a
// gap decode as undefined instructions, as on real machines.
const (
	OpInvalid Op = 0x00 // all-zero words are undefined

	// R-type ALU: rd = rn OP rm
	OpADD  Op = 0x01
	OpSUB  Op = 0x02
	OpRSB  Op = 0x03 // rd = rm - rn
	OpAND  Op = 0x04
	OpORR  Op = 0x05
	OpEOR  Op = 0x06
	OpBIC  Op = 0x07 // rd = rn &^ rm
	OpLSL  Op = 0x08
	OpLSR  Op = 0x09
	OpASR  Op = 0x0A
	OpROR  Op = 0x0B
	OpMUL  Op = 0x0C
	OpSDIV Op = 0x0D // ARM semantics: x/0 == 0
	OpUDIV Op = 0x0E
	OpSREM Op = 0x0F // x%0 == x (consistent with ARM's __aeabi behaviour)
	OpUREM Op = 0x10
	OpMOV  Op = 0x11 // rd = rm
	OpMVN  Op = 0x12 // rd = ^rm
	OpSMLH Op = 0x13 // rd = high 32 bits of int64(rn)*int64(rm)
	OpUMLH Op = 0x14 // rd = high 32 bits of uint64(rn)*uint64(rm)

	// I-type ALU: rd = rn OP signExt(imm16), unless noted.
	OpADDI Op = 0x18
	OpSUBI Op = 0x19
	OpANDI Op = 0x1A
	OpORRI Op = 0x1B
	OpEORI Op = 0x1C
	OpLSLI Op = 0x1D // shift amount = imm16 & 31
	OpLSRI Op = 0x1E
	OpASRI Op = 0x1F
	OpMOVZ Op = 0x20 // rd = zeroExt(imm16)
	OpMOVT Op = 0x21 // rd = (rd & 0xFFFF) | imm16<<16  (rn must equal rd)

	// Compares: set NZCV, write no GPR.
	OpCMP  Op = 0x24 // flags from rn - rm
	OpCMPI Op = 0x25 // flags from rn - signExt(imm16)
	OpTST  Op = 0x26 // flags from rn & rm (N,Z only; C,V cleared)

	// Memory. Immediate forms: address = rn + signExt(imm16).
	// Register forms: address = rn + rm.
	OpLDR   Op = 0x28 // 32-bit load
	OpLDRB  Op = 0x29 // zero-extending byte load
	OpLDRH  Op = 0x2A // zero-extending halfword load
	OpSTR   Op = 0x2B
	OpSTRB  Op = 0x2C
	OpSTRH  Op = 0x2D
	OpLDRR  Op = 0x2E
	OpLDRBR Op = 0x2F
	OpSTRR  Op = 0x30
	OpSTRBR Op = 0x31

	// Control flow.
	OpB   Op = 0x34 // conditional branch, B-type
	OpBL  Op = 0x35 // branch and link, BL format
	OpBX  Op = 0x36 // indirect branch to rm (R-type, rd/rn zero)
	OpBLX Op = 0x37 // indirect call to rm, LR = PC+4

	// System.
	OpSYSCALL Op = 0x3A
	OpNOP     Op = 0x3B
)

// Cond is a branch condition evaluated against the NZCV flags.
type Cond uint8

const (
	CondAL   Cond = 0  // always
	CondEQ   Cond = 1  // Z
	CondNE   Cond = 2  // !Z
	CondLT   Cond = 3  // N != V
	CondGE   Cond = 4  // N == V
	CondLE   Cond = 5  // Z || N != V
	CondGT   Cond = 6  // !Z && N == V
	CondLO   Cond = 7  // !C (unsigned <)
	CondHS   Cond = 8  // C  (unsigned >=)
	CondLS   Cond = 9  // Z || !C (unsigned <=)
	CondHI   Cond = 10 // !C is false and !Z (unsigned >)
	numConds      = 11
)

// Flag bits inside the renamed flag register value.
const (
	FlagN uint32 = 1 << 3
	FlagZ uint32 = 1 << 2
	FlagC uint32 = 1 << 1
	FlagV uint32 = 1 << 0
)

// EvalCond reports whether condition c holds for the given flag value.
// Invalid condition encodings report an undefined-instruction error at
// decode, so EvalCond only sees valid conditions.
func EvalCond(c Cond, flags uint32) bool {
	n := flags&FlagN != 0
	z := flags&FlagZ != 0
	cf := flags&FlagC != 0
	v := flags&FlagV != 0
	switch c {
	case CondAL:
		return true
	case CondEQ:
		return z
	case CondNE:
		return !z
	case CondLT:
		return n != v
	case CondGE:
		return n == v
	case CondLE:
		return z || n != v
	case CondGT:
		return !z && n == v
	case CondLO:
		return !cf
	case CondHS:
		return cf
	case CondLS:
		return z || !cf
	case CondHI:
		return cf && !z
	}
	return false
}

// SubFlags computes the NZCV flags of a - b, with ARM carry semantics
// (C set when no borrow occurred).
func SubFlags(a, b uint32) uint32 {
	r := a - b
	var f uint32
	if r&0x8000_0000 != 0 {
		f |= FlagN
	}
	if r == 0 {
		f |= FlagZ
	}
	if a >= b {
		f |= FlagC
	}
	// Signed overflow: operands of differing sign and result sign differs
	// from the minuend.
	if (a^b)&0x8000_0000 != 0 && (a^r)&0x8000_0000 != 0 {
		f |= FlagV
	}
	return f
}

// AndFlags computes flags for TST (N and Z from a&b, C and V cleared).
func AndFlags(a, b uint32) uint32 {
	r := a & b
	var f uint32
	if r&0x8000_0000 != 0 {
		f |= FlagN
	}
	if r == 0 {
		f |= FlagZ
	}
	return f
}

// Class groups opcodes by execution behaviour.
type Class uint8

const (
	ClassInvalid Class = iota
	ClassALU           // register or immediate ALU, writes rd
	ClassCmp           // writes flags only
	ClassLoad
	ClassStore
	ClassBranch // B, BL, BX, BLX
	ClassSys    // SYSCALL
	ClassNop
)

// Inst is a decoded AR32 instruction.
type Inst struct {
	Op    Op
	Class Class
	Rd    uint8 // destination GPR (or 0xFF if none)
	Rn    uint8 // first source
	Rm    uint8 // second source (0xFF if unused)
	Imm   int32 // sign- or zero-extended immediate / branch word offset
	Cond  Cond  // for OpB
	Raw   uint32
}

// NoReg marks an unused register slot in a decoded instruction.
const NoReg = 0xFF

// ErrUndef is returned by Decode for undefined encodings. The simulated CPU
// raises an undefined-instruction exception when such an instruction reaches
// commit, exactly as the paper's gem5 model does for corrupted I-cache bits.
type ErrUndef struct {
	Raw    uint32
	Reason string
}

func (e ErrUndef) Error() string {
	return fmt.Sprintf("undefined instruction %#08x: %s", e.Raw, e.Reason)
}

func opcode(w uint32) Op      { return Op(w >> 26) }
func rdField(w uint32) uint8  { return uint8(w >> 21 & 0x1F) }
func rnField(w uint32) uint8  { return uint8(w >> 16 & 0x1F) }
func rmField(w uint32) uint8  { return uint8(w >> 11 & 0x1F) }
func imm16(w uint32) int32    { return int32(int16(w & 0xFFFF)) }
func off22(w uint32) int32    { return int32(w<<10) >> 10 }
func off26(w uint32) int32    { return int32(w<<6) >> 6 }
func condField(w uint32) Cond { return Cond(w >> 22 & 0xF) }

// Decode decodes a raw instruction word. It returns ErrUndef for encodings
// outside the defined space: unknown opcodes, register fields >= NumGPR,
// invalid condition codes, and nonzero must-be-zero fields. Dispatch is
// driven by the generated opFmtTab/opClassTab tables (see spec.go); each
// format's field checks are shared by every opcode of that format.
func Decode(w uint32) (Inst, error) {
	op := opcode(w)
	in := Inst{Op: op, Class: opClassTab[op], Raw: w, Rd: NoReg, Rm: NoReg}
	undef := func(reason string) (Inst, error) {
		in.Class = ClassInvalid
		return in, ErrUndef{Raw: w, Reason: reason}
	}
	checkReg := func(r uint8) bool { return r < NumGPR }

	switch opFmtTab[op] {
	case FmtR3:
		in.Rd, in.Rn, in.Rm = rdField(w), rnField(w), rmField(w)
		if !checkReg(in.Rd) || !checkReg(in.Rn) || !checkReg(in.Rm) {
			return undef("register field out of range")
		}
		if w&0x7FF != 0 {
			return undef("nonzero reserved field")
		}
	case FmtR2:
		in.Rd, in.Rm = rdField(w), rmField(w)
		in.Rn = in.Rm // single-source: track through rn for simplicity
		if !checkReg(in.Rd) || !checkReg(in.Rm) {
			return undef("register field out of range")
		}
		if w&0x7FF != 0 || rnField(w) != 0 {
			return undef("nonzero reserved field")
		}
	case FmtRI:
		in.Rd, in.Rn, in.Imm = rdField(w), rnField(w), imm16(w)
		if !checkReg(in.Rd) || !checkReg(in.Rn) {
			return undef("register field out of range")
		}
	case FmtMOVZ:
		in.Rd = rdField(w)
		in.Rn = NoReg
		in.Imm = int32(w & 0xFFFF) // zero-extended
		if !checkReg(in.Rd) || rnField(w) != 0 {
			return undef("bad MOVZ encoding")
		}
	case FmtMOVT:
		in.Rd, in.Rn = rdField(w), rnField(w)
		in.Imm = int32(w & 0xFFFF)
		if !checkReg(in.Rd) || in.Rd != in.Rn {
			return undef("MOVT requires rn == rd")
		}
	case FmtCmpR:
		in.Rd = NoReg
		in.Rn, in.Rm = rnField(w), rmField(w)
		if !checkReg(in.Rn) || !checkReg(in.Rm) {
			return undef("register field out of range")
		}
		if rdField(w) != 0 || w&0x7FF != 0 {
			return undef("nonzero reserved field")
		}
	case FmtCmpI:
		in.Rd = NoReg
		in.Rn, in.Imm = rnField(w), imm16(w)
		if !checkReg(in.Rn) || rdField(w) != 0 {
			return undef("bad CMPI encoding")
		}
	case FmtB:
		in.Cond = condField(w)
		in.Imm = off22(w)
		if in.Cond >= numConds {
			return undef("invalid condition code")
		}
	case FmtBL:
		in.Imm = off26(w)
	case FmtBX:
		in.Rm = rmField(w)
		if !checkReg(in.Rm) {
			return undef("register field out of range")
		}
		if rdField(w) != 0 || rnField(w) != 0 || w&0x7FF != 0 {
			return undef("nonzero reserved field")
		}
	case FmtSys:
		if w&0x03FF_FFFF != 0 {
			return undef("nonzero reserved field")
		}
	default: // FmtNone: opcode outside the defined space
		return undef("unknown opcode")
	}
	return in, nil
}

// Encode helpers used by the assembler. They panic on out-of-range operands;
// the assembler validates operands and reports errors with source positions
// before calling them.

func EncodeR(op Op, rd, rn, rm uint8) uint32 {
	mustReg(rd)
	mustReg(rn)
	mustReg(rm)
	return uint32(op)<<26 | uint32(rd)<<21 | uint32(rn)<<16 | uint32(rm)<<11
}

func EncodeI(op Op, rd, rn uint8, imm int32) uint32 {
	mustReg(rd)
	mustReg(rn)
	if imm < -0x8000 || imm > 0xFFFF {
		panic(fmt.Sprintf("isa: immediate %d out of range", imm))
	}
	return uint32(op)<<26 | uint32(rd)<<21 | uint32(rn)<<16 | uint32(uint16(imm))
}

func EncodeB(cond Cond, wordOff int32) uint32 {
	if cond >= numConds {
		panic("isa: invalid condition")
	}
	if wordOff < -(1<<21) || wordOff >= 1<<21 {
		panic(fmt.Sprintf("isa: branch offset %d out of range", wordOff))
	}
	return uint32(OpB)<<26 | uint32(cond)<<22 | uint32(wordOff)&0x3F_FFFF
}

func EncodeBL(wordOff int32) uint32 {
	if wordOff < -(1<<25) || wordOff >= 1<<25 {
		panic(fmt.Sprintf("isa: call offset %d out of range", wordOff))
	}
	return uint32(OpBL)<<26 | uint32(wordOff)&0x03FF_FFFF
}

func mustReg(r uint8) {
	if r >= NumGPR {
		panic(fmt.Sprintf("isa: register r%d out of range", r))
	}
}
