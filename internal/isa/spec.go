package isa

//go:generate go run ./gen

// Per-opcode specifications: the single source of truth for the AR32
// instruction set. Everything a decoder or an interpreter needs to know
// about an opcode — its encoding format, execution class, operand kinds,
// destination, memory behaviour, latency class and ALU evaluator — is
// annotated here once; `go generate` (internal/isa/gen) emits the dense
// dispatch tables consumed by Decode, Disassemble and the cpu package's
// execution loop (tables_gen.go here, exec_gen.go in internal/cpu). The
// generated tables can never drift from these specs: CI regenerates them
// and fails on any diff, and TestGeneratedTablesMatchSpecs cross-checks
// them at test time.

// NumOps is the size of the 6-bit primary opcode space.
const NumOps = 0x40

// Format classifies how an opcode's operand fields are encoded and which
// of its encodings are defined. Decode dispatches on it; each format's
// field checks (and its ErrUndef reasons) are fixed, so two opcodes with
// the same format decode identically up to their opcode field.
type Format uint8

const (
	FmtNone Format = iota // unused opcode: every encoding is undefined
	FmtR3                 // rd, rn, rm; reserved bits [10:0] must be zero
	FmtR2                 // rd, rm (single-source ALU); rn field and reserved bits must be zero
	FmtRI                 // rd, rn, signExt(imm16)
	FmtMOVZ               // rd, zeroExt(imm16); rn field must be zero
	FmtMOVT               // rd, zeroExt(imm16); rn field must equal rd
	FmtCmpR               // rn, rm; rd field and reserved bits must be zero
	FmtCmpI               // rn, signExt(imm16); rd field must be zero
	FmtB                  // cond, off22
	FmtBL                 // off26
	FmtBX                 // rm; rd, rn and reserved bits must be zero
	FmtSys                // no operands; bits [25:0] must be zero
)

// DestKind says which architectural register an opcode writes.
type DestKind uint8

const (
	DestNone  DestKind = iota
	DestRd             // the rd field
	DestFlags          // the NZCV flag register (compares)
	DestLR             // the link register (BL, BLX)
	DestR0             // r0 (syscall return value)
)

// SrcKind names one architectural source operand. The per-op source list
// is ordered: the cpu's rename stage maps it to physical registers in this
// exact order, so forensics probe events stay deterministic.
type SrcKind uint8

const (
	SrcNone   SrcKind = iota
	SrcRn             // the rn field
	SrcRm             // the rm field
	SrcRdData         // the rd field read as store data
	SrcFlags          // the NZCV flag register (conditional branches)
)

// LatKind selects which configured execution latency an opcode pays.
type LatKind uint8

const (
	LatALU LatKind = iota
	LatMul
	LatDiv
)

// OpSpec annotates one opcode.
type OpSpec struct {
	Op    Op
	Name  string // assembler mnemonic
	Class Class
	Fmt   Format

	Dest DestKind
	Srcs []SrcKind // ordered architectural sources

	// Eval is the ALU/compare evaluator over operands a (first source
	// value, 0 if none) and b (second source value for RegB ops, else the
	// immediate). It is a Go expression — or, if it contains "return", a
	// function body — compiled into package cpu, which imports isa and
	// defines the sdiv/srem helpers.
	Eval string
	// RegB marks ALU/compare ops whose b operand is a register.
	RegB bool
	Lat  LatKind

	// MemSize is the access width in bytes for loads and stores.
	MemSize uint8
	// MemReg marks register-offset addressing (address = rn + rm).
	MemReg bool
}

// specs lists every defined opcode. Opcodes absent from this list decode
// as undefined instructions (FmtNone).
var specs = []OpSpec{
	// R-type ALU.
	{Op: OpADD, Name: "add", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "a + b", RegB: true},
	{Op: OpSUB, Name: "sub", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "a - b", RegB: true},
	{Op: OpRSB, Name: "rsb", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "b - a", RegB: true},
	{Op: OpAND, Name: "and", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "a & b", RegB: true},
	{Op: OpORR, Name: "orr", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "a | b", RegB: true},
	{Op: OpEOR, Name: "eor", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "a ^ b", RegB: true},
	{Op: OpBIC, Name: "bic", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "a &^ b", RegB: true},
	{Op: OpLSL, Name: "lsl", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "a << (b & 31)", RegB: true},
	{Op: OpLSR, Name: "lsr", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "a >> (b & 31)", RegB: true},
	{Op: OpASR, Name: "asr", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "uint32(int32(a) >> (b & 31))", RegB: true},
	{Op: OpROR, Name: "ror", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, RegB: true,
		Eval: "s := b & 31\nif s == 0 {\n\treturn a\n}\nreturn a>>s | a<<(32-s)"},
	{Op: OpMUL, Name: "mul", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "a * b", RegB: true, Lat: LatMul},
	{Op: OpSDIV, Name: "sdiv", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "sdiv(int32(a), int32(b))", RegB: true, Lat: LatDiv},
	{Op: OpUDIV, Name: "udiv", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, RegB: true, Lat: LatDiv,
		Eval: "if b == 0 {\n\treturn 0\n}\nreturn a / b"},
	{Op: OpSREM, Name: "srem", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "srem(int32(a), int32(b))", RegB: true, Lat: LatDiv},
	{Op: OpUREM, Name: "urem", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, RegB: true, Lat: LatDiv,
		Eval: "if b == 0 {\n\treturn a\n}\nreturn a % b"},
	// MOV/MVN track their single source through rn (Decode aliases rn=rm).
	{Op: OpMOV, Name: "mov", Class: ClassALU, Fmt: FmtR2, Dest: DestRd, Srcs: []SrcKind{SrcRn}, Eval: "a"},
	{Op: OpMVN, Name: "mvn", Class: ClassALU, Fmt: FmtR2, Dest: DestRd, Srcs: []SrcKind{SrcRn}, Eval: "^a"},
	{Op: OpSMLH, Name: "smulh", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, RegB: true, Lat: LatMul,
		Eval: "uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)"},
	{Op: OpUMLH, Name: "umulh", Class: ClassALU, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "uint32(uint64(a) * uint64(b) >> 32)", RegB: true, Lat: LatMul},

	// I-type ALU.
	{Op: OpADDI, Name: "addi", Class: ClassALU, Fmt: FmtRI, Dest: DestRd, Srcs: []SrcKind{SrcRn}, Eval: "a + b"},
	{Op: OpSUBI, Name: "subi", Class: ClassALU, Fmt: FmtRI, Dest: DestRd, Srcs: []SrcKind{SrcRn}, Eval: "a - b"},
	{Op: OpANDI, Name: "andi", Class: ClassALU, Fmt: FmtRI, Dest: DestRd, Srcs: []SrcKind{SrcRn}, Eval: "a & b"},
	{Op: OpORRI, Name: "orri", Class: ClassALU, Fmt: FmtRI, Dest: DestRd, Srcs: []SrcKind{SrcRn}, Eval: "a | b"},
	{Op: OpEORI, Name: "eori", Class: ClassALU, Fmt: FmtRI, Dest: DestRd, Srcs: []SrcKind{SrcRn}, Eval: "a ^ b"},
	{Op: OpLSLI, Name: "lsli", Class: ClassALU, Fmt: FmtRI, Dest: DestRd, Srcs: []SrcKind{SrcRn}, Eval: "a << (b & 31)"},
	{Op: OpLSRI, Name: "lsri", Class: ClassALU, Fmt: FmtRI, Dest: DestRd, Srcs: []SrcKind{SrcRn}, Eval: "a >> (b & 31)"},
	{Op: OpASRI, Name: "asri", Class: ClassALU, Fmt: FmtRI, Dest: DestRd, Srcs: []SrcKind{SrcRn}, Eval: "uint32(int32(a) >> (b & 31))"},
	{Op: OpMOVZ, Name: "movz", Class: ClassALU, Fmt: FmtMOVZ, Dest: DestRd, Eval: "b"},
	{Op: OpMOVT, Name: "movt", Class: ClassALU, Fmt: FmtMOVT, Dest: DestRd, Srcs: []SrcKind{SrcRn}, Eval: "a&0xFFFF | b<<16"},

	// Compares: write the flag register only.
	{Op: OpCMP, Name: "cmp", Class: ClassCmp, Fmt: FmtCmpR, Dest: DestFlags, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "isa.SubFlags(a, b)", RegB: true},
	{Op: OpCMPI, Name: "cmpi", Class: ClassCmp, Fmt: FmtCmpI, Dest: DestFlags, Srcs: []SrcKind{SrcRn}, Eval: "isa.SubFlags(a, b)"},
	{Op: OpTST, Name: "tst", Class: ClassCmp, Fmt: FmtCmpR, Dest: DestFlags, Srcs: []SrcKind{SrcRn, SrcRm}, Eval: "isa.AndFlags(a, b)", RegB: true},

	// Memory.
	{Op: OpLDR, Name: "ldr", Class: ClassLoad, Fmt: FmtRI, Dest: DestRd, Srcs: []SrcKind{SrcRn}, MemSize: 4},
	{Op: OpLDRB, Name: "ldrb", Class: ClassLoad, Fmt: FmtRI, Dest: DestRd, Srcs: []SrcKind{SrcRn}, MemSize: 1},
	{Op: OpLDRH, Name: "ldrh", Class: ClassLoad, Fmt: FmtRI, Dest: DestRd, Srcs: []SrcKind{SrcRn}, MemSize: 2},
	{Op: OpSTR, Name: "str", Class: ClassStore, Fmt: FmtRI, Srcs: []SrcKind{SrcRn, SrcRdData}, MemSize: 4},
	{Op: OpSTRB, Name: "strb", Class: ClassStore, Fmt: FmtRI, Srcs: []SrcKind{SrcRn, SrcRdData}, MemSize: 1},
	{Op: OpSTRH, Name: "strh", Class: ClassStore, Fmt: FmtRI, Srcs: []SrcKind{SrcRn, SrcRdData}, MemSize: 2},
	{Op: OpLDRR, Name: "ldrr", Class: ClassLoad, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, MemSize: 4, MemReg: true},
	{Op: OpLDRBR, Name: "ldrbr", Class: ClassLoad, Fmt: FmtR3, Dest: DestRd, Srcs: []SrcKind{SrcRn, SrcRm}, MemSize: 1, MemReg: true},
	{Op: OpSTRR, Name: "strr", Class: ClassStore, Fmt: FmtR3, Srcs: []SrcKind{SrcRn, SrcRm, SrcRdData}, MemSize: 4, MemReg: true},
	{Op: OpSTRBR, Name: "strbr", Class: ClassStore, Fmt: FmtR3, Srcs: []SrcKind{SrcRn, SrcRm, SrcRdData}, MemSize: 1, MemReg: true},

	// Control flow. The flags source of OpB is dropped at predecode when
	// the condition is AL; BL and BLX write the link register.
	{Op: OpB, Name: "b", Class: ClassBranch, Fmt: FmtB, Srcs: []SrcKind{SrcFlags}},
	{Op: OpBL, Name: "bl", Class: ClassBranch, Fmt: FmtBL, Dest: DestLR},
	{Op: OpBX, Name: "bx", Class: ClassBranch, Fmt: FmtBX, Srcs: []SrcKind{SrcRm}},
	{Op: OpBLX, Name: "blx", Class: ClassBranch, Fmt: FmtBX, Dest: DestLR, Srcs: []SrcKind{SrcRm}},

	// System.
	{Op: OpSYSCALL, Name: "syscall", Class: ClassSys, Fmt: FmtSys, Dest: DestR0},
	{Op: OpNOP, Name: "nop", Class: ClassNop, Fmt: FmtSys},
}

// Specs returns the specification of every defined opcode, in opcode
// order. The slice is freshly allocated; callers may not mutate the
// shared Srcs backing arrays.
func Specs() []OpSpec {
	out := make([]OpSpec, len(specs))
	copy(out, specs)
	return out
}
