package isa

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func TestDisassembleForms(t *testing.T) {
	cases := []struct {
		w    uint32
		pc   uint32
		want string
	}{
		{EncodeR(OpADD, 1, 2, 3), 0, "add r1, r2, r3"},
		{EncodeI(OpADDI, 4, 5, -7), 0, "addi r4, r5, #-7"},
		{EncodeR(OpMOV, 6, 0, 8), 0, "mov r6, r8"},
		{EncodeI(OpMOVZ, 1, 0, 0x1234), 0, "movz r1, #0x1234"},
		{EncodeI(OpCMPI, 0, 2, 3), 0, "cmpi r2, #3"},
		{EncodeI(OpLDR, 1, 13, 8), 0, "ldr r1, [r13, #8]"},
		{EncodeR(OpSTRR, 1, 2, 3), 0, "strr r1, [r2, r3]"},
		{EncodeB(CondNE, -1), 0x100, "b.ne 0x100"},
		{EncodeBL(2), 0x100, "bl 0x10C"},
		{EncodeR(OpBX, 0, 0, 14), 0, "bx r14"},
		{uint32(OpSYSCALL) << 26, 0, "syscall"},
		{0xFFFFFFFF, 0, ".word 0xFFFFFFFF"},
		{0, 0, ".word 0x00000000"},
	}
	for _, tc := range cases {
		if got := Disassemble(tc.pc, tc.w); got != tc.want {
			t.Errorf("Disassemble(%#x) = %q, want %q", tc.w, got, tc.want)
		}
	}
}

func TestDisassembleTotal(t *testing.T) {
	// Every word disassembles to something non-empty without panicking.
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 100000; i++ {
		s := Disassemble(0x1000, rng.Uint32())
		if s == "" || strings.Contains(s, "%!") {
			t.Fatalf("bad disassembly %q", s)
		}
	}
}
