package isa

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRType(t *testing.T) {
	ops := []Op{OpADD, OpSUB, OpRSB, OpAND, OpORR, OpEOR, OpBIC, OpLSL,
		OpLSR, OpASR, OpROR, OpMUL, OpSDIV, OpUDIV, OpSREM, OpUREM,
		OpSMLH, OpUMLH}
	for _, op := range ops {
		w := EncodeR(op, 3, 4, 5)
		in, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %v: %v", op, err)
		}
		if in.Op != op || in.Rd != 3 || in.Rn != 4 || in.Rm != 5 {
			t.Fatalf("roundtrip %v: got %+v", op, in)
		}
		if in.Class != ClassALU {
			t.Fatalf("%v class = %v", op, in.Class)
		}
	}
}

func TestEncodeDecodeIType(t *testing.T) {
	for _, imm := range []int32{0, 1, -1, 32767, -32768, 1234} {
		w := EncodeI(OpADDI, 1, 2, imm)
		in, err := Decode(w)
		if err != nil {
			t.Fatalf("decode ADDI #%d: %v", imm, err)
		}
		if in.Imm != imm {
			t.Fatalf("imm roundtrip: got %d want %d", in.Imm, imm)
		}
	}
}

func TestEncodeDecodeBranch(t *testing.T) {
	for _, off := range []int32{0, 1, -1, 1<<21 - 1, -(1 << 21)} {
		w := EncodeB(CondNE, off)
		in, err := Decode(w)
		if err != nil {
			t.Fatalf("decode B %d: %v", off, err)
		}
		if in.Imm != off || in.Cond != CondNE {
			t.Fatalf("branch roundtrip: got %+v want off=%d", in, off)
		}
	}
	for _, off := range []int32{0, -1, 1<<25 - 1, -(1 << 25)} {
		w := EncodeBL(off)
		in, err := Decode(w)
		if err != nil {
			t.Fatalf("decode BL %d: %v", off, err)
		}
		if in.Imm != off {
			t.Fatalf("BL roundtrip: got %d want %d", in.Imm, off)
		}
	}
}

func TestDecodeRejectsBadEncodings(t *testing.T) {
	cases := []struct {
		name string
		w    uint32
	}{
		{"all zero", 0},
		{"all ones", 0xFFFFFFFF},
		{"unknown opcode", uint32(0x3F) << 26},
		{"register out of range", EncodeR(OpADD, 3, 4, 5) | 1<<25}, // rd bit 4 set -> rd=19
		{"nonzero reserved R-type", EncodeR(OpADD, 1, 2, 3) | 0x7},
		{"invalid condition", uint32(OpB)<<26 | 13<<22},
		{"nonzero reserved syscall", uint32(OpSYSCALL)<<26 | 1},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.w); err == nil {
			t.Errorf("%s (%#08x): decoded without error", tc.name, tc.w)
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	// Property: Decode is total over all 32-bit words.
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 200000; i++ {
		w := rng.Uint32()
		in, err := Decode(w)
		if err == nil && in.Class == ClassInvalid {
			t.Fatalf("%#08x: decoded without error but invalid class", w)
		}
	}
}

func TestUndefinedFractionIsSubstantial(t *testing.T) {
	// The opcode space is deliberately sparse: a substantial fraction of
	// random words must decode as undefined, since that drives the
	// crash-dominant behaviour of I-cache faults.
	rng := rand.New(rand.NewPCG(7, 9))
	bad := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if _, err := Decode(rng.Uint32()); err != nil {
			bad++
		}
	}
	frac := float64(bad) / n
	if frac < 0.3 || frac > 0.95 {
		t.Fatalf("undefined fraction = %.2f, want within [0.30, 0.95]", frac)
	}
}

func TestSubFlagsProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		fl := SubFlags(a, b)
		r := a - b
		if (fl&FlagZ != 0) != (r == 0) {
			return false
		}
		if (fl&FlagN != 0) != (int32(r) < 0) {
			return false
		}
		if (fl&FlagC != 0) != (a >= b) {
			return false
		}
		// V: signed overflow iff the true signed difference is not
		// representable.
		d := int64(int32(a)) - int64(int32(b))
		overflow := d < -(1<<31) || d >= 1<<31
		return (fl&FlagV != 0) == overflow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalCondMatchesComparisons(t *testing.T) {
	// Property: after CMP a,b the condition codes implement the signed and
	// unsigned comparisons.
	f := func(a, b uint32) bool {
		fl := SubFlags(a, b)
		sa, sb := int32(a), int32(b)
		checks := []struct {
			c    Cond
			want bool
		}{
			{CondEQ, a == b},
			{CondNE, a != b},
			{CondLT, sa < sb},
			{CondGE, sa >= sb},
			{CondLE, sa <= sb},
			{CondGT, sa > sb},
			{CondLO, a < b},
			{CondHS, a >= b},
			{CondLS, a <= b},
			{CondHI, a > b},
			{CondAL, true},
		}
		for _, ch := range checks {
			if EvalCond(ch.c, fl) != ch.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestAndFlags(t *testing.T) {
	if f := AndFlags(0, 0); f&FlagZ == 0 {
		t.Fatal("TST 0,0 must set Z")
	}
	if f := AndFlags(0x80000000, 0x80000000); f&FlagN == 0 {
		t.Fatal("TST of negative overlap must set N")
	}
	if f := AndFlags(1, 2); f&FlagZ == 0 {
		t.Fatal("TST 1,2 must set Z")
	}
}
