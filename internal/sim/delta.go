package sim

// Delta restore: a fault-injection campaign restores the same golden
// checkpoint thousands of times, and each sample only dirties a small
// slice of the machine — the cache rows it touched, the RAM chunks it
// wrote, a handful of TLB entries. Every component therefore tracks which
// of its rows/chunks/entries changed since tracking was armed, and
// RestoreDelta rewinds only those instead of copying the whole machine
// (the core itself is the exception: its pipeline state all changes every
// cycle, so it is always fully restored — it is a few KB).
//
// The contract is strict: delta restore is only correct when the machine
// bit-equalled the baseline snapshot at arm time, because everything the
// tracking did NOT mark is assumed to still hold the baseline's values.
// The Dirty handle encodes that contract — it remembers which machine and
// which snapshot it was armed against, and RestoreDelta silently falls
// back to a full restore (re-arming afterwards) whenever the handle does
// not match. Campaign code can therefore call RestoreDelta unconditionally
// and the fallback covers the first sample on a machine and every
// checkpoint switch.

// Dirty is the delta-restore handle returned by TrackDirty: proof that
// dirty tracking is armed on a machine whose state equals a particular
// baseline snapshot. It is invalidated (superseded) by the next TrackDirty
// or RestoreDelta call on the machine.
type Dirty struct {
	m    *Machine
	base *Snapshot
}

// TrackDirty arms dirty tracking on every component and returns the handle
// that RestoreDelta needs. base must be the snapshot the machine's state
// currently equals — typically the snapshot just passed to RestoreFrom.
func (m *Machine) TrackDirty(base *Snapshot) *Dirty {
	m.RAM.TrackDirty()
	m.L1I.TrackDirty()
	m.L1D.TrackDirty()
	m.L2.TrackDirty()
	m.ITLB.TrackDirty()
	m.DTLB.TrackDirty()
	m.Kern.TrackDirty()
	return &Dirty{m: m, base: base}
}

// RestoreDelta rewinds the machine to snapshot s, restoring only the state
// mutated since dirty was armed, and returns the handle for the next
// interval. If dirty is nil, belongs to another machine, or was armed
// against a different baseline than s, RestoreDelta falls back to a full
// RestoreFrom and arms tracking fresh — the result is identical either
// way, only the cost differs.
func (m *Machine) RestoreDelta(s *Snapshot, dirty *Dirty) *Dirty {
	if dirty == nil || dirty.m != m || dirty.base != s {
		m.RestoreFrom(s)
		return m.TrackDirty(s)
	}
	m.RAM.RestoreDirty(s.ram)
	m.L1I.RestoreDirty(s.l1i)
	m.L1D.RestoreDirty(s.l1d)
	m.L2.RestoreDirty(s.l2)
	m.ITLB.RestoreDirty(s.itlb)
	m.DTLB.RestoreDirty(s.dtlb)
	m.Walker.RestoreDirty(s.walker)
	m.Kern.RestoreDirty(s.kern)
	m.Core.RestoreDirty(s.core)
	return dirty
}
