package sim

import (
	"mbusim/internal/cache"
	"mbusim/internal/cpu"
	"mbusim/internal/kernel"
	"mbusim/internal/mem"
	"mbusim/internal/tlb"
	"mbusim/internal/vm"
	"mbusim/internal/wire"
)

// SnapshotFormat versions the binary wire encoding of machine snapshots —
// the field sequences in the EncodeWire/DecodeSnapshotWire pairs of every
// component package plus this one. It is hashed into every checkpoint
// artifact key, so bumping it (required whenever any snapshotted field is
// added, removed, or reordered) silently invalidates every cached
// artifact instead of letting an old build's bytes decode into the wrong
// fields.
const SnapshotFormat = 1

func encodeConfig(w *wire.Writer, cfg Config) {
	w.Int(cfg.CPU.FetchWidth)
	w.Int(cfg.CPU.IssueWidth)
	w.Int(cfg.CPU.WBWidth)
	w.Int(cfg.CPU.CommitWidth)
	w.Int(cfg.CPU.ROBSize)
	w.Int(cfg.CPU.IQSize)
	w.Int(cfg.CPU.PhysRegs)
	w.Int(cfg.CPU.LQSize)
	w.Int(cfg.CPU.SQSize)
	w.Int(cfg.CPU.FetchQSize)
	w.Int(cfg.CPU.ALULat)
	w.Int(cfg.CPU.MulLat)
	w.Int(cfg.CPU.DivLat)
	w.Int(cfg.CPU.AGULat)
	w.U64(cfg.CPU.DeadlockLimit)
	w.Bool(cfg.CPU.InOrder)

	w.Int(cfg.L1Size)
	w.Int(cfg.L1Ways)
	w.Int(cfg.L2Size)
	w.Int(cfg.L2Ways)
	w.Int(cfg.LineSize)
	w.Int(cfg.L1Lat)
	w.Int(cfg.L2Lat)
	w.Int(cfg.TLBEntries)
	w.Int(cfg.PABits)
	w.Bool(cfg.WalkerDirect)
}

func decodeConfig(r *wire.Reader) Config {
	var cfg Config
	cfg.CPU.FetchWidth = r.Int()
	cfg.CPU.IssueWidth = r.Int()
	cfg.CPU.WBWidth = r.Int()
	cfg.CPU.CommitWidth = r.Int()
	cfg.CPU.ROBSize = r.Int()
	cfg.CPU.IQSize = r.Int()
	cfg.CPU.PhysRegs = r.Int()
	cfg.CPU.LQSize = r.Int()
	cfg.CPU.SQSize = r.Int()
	cfg.CPU.FetchQSize = r.Int()
	cfg.CPU.ALULat = r.Int()
	cfg.CPU.MulLat = r.Int()
	cfg.CPU.DivLat = r.Int()
	cfg.CPU.AGULat = r.Int()
	cfg.CPU.DeadlockLimit = r.U64()
	cfg.CPU.InOrder = r.Bool()

	cfg.L1Size = r.Int()
	cfg.L1Ways = r.Int()
	cfg.L2Size = r.Int()
	cfg.L2Ways = r.Int()
	cfg.LineSize = r.Int()
	cfg.L1Lat = r.Int()
	cfg.L2Lat = r.Int()
	cfg.TLBEntries = r.Int()
	cfg.PABits = r.Int()
	cfg.WalkerDirect = r.Bool()
	return cfg
}

// EncodeWire appends the complete machine snapshot — configuration plus
// every component's state — to w in the artifact wire format. The core's
// predecoded text is deliberately excluded (it is derived from the program
// image); a decoded snapshot must have a text bound with BindProgram
// before it can be restored into a machine.
func (s *Snapshot) EncodeWire(w *wire.Writer) {
	encodeConfig(w, s.Cfg)
	s.ram.EncodeWire(w)
	s.l1i.EncodeWire(w)
	s.l1d.EncodeWire(w)
	s.l2.EncodeWire(w)
	s.itlb.EncodeWire(w)
	s.dtlb.EncodeWire(w)
	s.walker.EncodeWire(w)
	s.kern.EncodeWire(w)
	s.core.EncodeWire(w)
}

// DecodeSnapshotWire reads a machine snapshot encoded by EncodeWire.
func DecodeSnapshotWire(r *wire.Reader) (*Snapshot, error) {
	s := &Snapshot{Cfg: decodeConfig(r)}
	var err error
	if s.ram, err = mem.DecodeSnapshotWire(r); err != nil {
		return nil, err
	}
	if s.l1i, err = cache.DecodeSnapshotWire(r); err != nil {
		return nil, err
	}
	if s.l1d, err = cache.DecodeSnapshotWire(r); err != nil {
		return nil, err
	}
	if s.l2, err = cache.DecodeSnapshotWire(r); err != nil {
		return nil, err
	}
	if s.itlb, err = tlb.DecodeSnapshotWire(r); err != nil {
		return nil, err
	}
	if s.dtlb, err = tlb.DecodeSnapshotWire(r); err != nil {
		return nil, err
	}
	if s.walker, err = vm.DecodeSnapshotWire(r); err != nil {
		return nil, err
	}
	if s.kern, err = kernel.DecodeSnapshotWire(r); err != nil {
		return nil, err
	}
	if s.core, err = cpu.DecodeSnapshotWire(r); err != nil {
		return nil, err
	}
	return s, nil
}

// BindProgram attaches the predecoded text of a live machine (one that
// has Load-ed the program image the snapshot was taken under) to a decoded
// snapshot, making it restorable. Snapshots taken in-process already share
// their core's pretext and never need binding.
func (s *Snapshot) BindProgram(m *Machine) error {
	return s.core.BindText(m.Core)
}
