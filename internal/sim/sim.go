// Package sim assembles the full simulated machine — core, caches, TLBs,
// page walker, physical memory and kernel — and drives it to completion,
// producing the Outcome record that the fault-injection campaign
// classifies.
package sim

import (
	"time"

	"mbusim/internal/asm"
	"mbusim/internal/cache"
	"mbusim/internal/cpu"
	"mbusim/internal/kernel"
	"mbusim/internal/mem"
	"mbusim/internal/tlb"
	"mbusim/internal/vm"
)

// Config describes the whole machine. Defaults follow the paper's Table I.
type Config struct {
	CPU cpu.Config

	L1Size, L1Ways int
	L2Size, L2Ways int
	LineSize       int
	L1Lat, L2Lat   int
	TLBEntries     int
	PABits         int

	// WalkerDirect routes page-table walks straight to physical memory
	// instead of through the L2 cache (the DESIGN.md walker-path
	// ablation: it removes the kernel-panic route through L2 faults).
	WalkerDirect bool
}

// DefaultConfig returns the ARM Cortex-A9-like machine of Table I at
// scaled geometry: the workloads are ~1/256-scale MiBench analogs, so the
// cache capacities are scaled (L1 32KB -> 8KB, L2 512KB -> 64KB, pages
// 4KB -> 1KB) to preserve the occupancy pressure of the paper's
// full-system runs. Associativities, line size, TLB entries and every core
// structure (ROB, IQ, physical register file, widths) keep the Table I
// values; the FIT analysis uses the paper's Table VIII bit counts.
func DefaultConfig() Config {
	return Config{
		CPU:        cpu.DefaultConfig(),
		L1Size:     8 << 10,
		L1Ways:     4,
		L2Size:     64 << 10,
		L2Ways:     8,
		LineSize:   64,
		L1Lat:      2,
		L2Lat:      8,
		TLBEntries: 32,
		PABits:     23, // 8 MB of physical memory
	}
}

// PaperConfig returns the unscaled Table I geometry (32KB L1s, 512KB L2)
// for experiments that want the paper's literal configuration.
func PaperConfig() Config {
	cfg := DefaultConfig()
	cfg.L1Size = 32 << 10
	cfg.L2Size = 512 << 10
	return cfg
}

// Machine is one simulated system instance. Machines are single-use: load
// one program, run it once. Build a fresh Machine per fault-injection run.
type Machine struct {
	Cfg    Config
	RAM    *mem.RAM
	L1I    *cache.Cache
	L1D    *cache.Cache
	L2     *cache.Cache
	ITLB   *tlb.TLB
	DTLB   *tlb.TLB
	Walker *vm.Walker
	Kern   *kernel.Kernel
	Core   *cpu.Core
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	ram := mem.NewRAM(kernel.RAMSize)
	l2 := cache.New(cache.Config{
		Name: "L2", Size: cfg.L2Size, Ways: cfg.L2Ways,
		LineSize: cfg.LineSize, Latency: cfg.L2Lat, PABits: cfg.PABits,
	}, ram)
	l1i := cache.New(cache.Config{
		Name: "L1I", Size: cfg.L1Size, Ways: cfg.L1Ways,
		LineSize: cfg.LineSize, Latency: cfg.L1Lat, PABits: cfg.PABits,
	}, l2)
	l1d := cache.New(cache.Config{
		Name: "L1D", Size: cfg.L1Size, Ways: cfg.L1Ways,
		LineSize: cfg.LineSize, Latency: cfg.L1Lat, PABits: cfg.PABits,
	}, l2)
	itlb := tlb.New("ITLB", cfg.TLBEntries)
	dtlb := tlb.New("DTLB", cfg.TLBEntries)
	kern := kernel.New(ram, l2, l1d)
	var port vm.WordReader = l2
	if cfg.WalkerDirect {
		port = ramPort{ram}
	}
	walker := vm.NewWalker(port, kern.PTRoot(), kernel.NumFrames)
	core := cpu.New(cfg.CPU, l1i, l1d, itlb, dtlb, walker, kern)
	return &Machine{
		Cfg: cfg, RAM: ram, L1I: l1i, L1D: l1d, L2: l2,
		ITLB: itlb, DTLB: dtlb, Walker: walker, Kern: kern, Core: core,
	}
}

// Load places the program image in memory and points the core at its entry.
func (m *Machine) Load(prog *asm.Program) error {
	entry, sp, err := m.Kern.Load(prog)
	if err != nil {
		return err
	}
	m.Core.InstallText(prog.TextBase, prog.Text)
	m.Core.SetPC(entry)
	m.Core.SetArchReg(13, sp)
	return nil
}

// Outcome records how a run ended.
type Outcome struct {
	Stop     cpu.StopKind
	TimedOut bool // hit the cycle limit (the paper's Timeout class)
	// WallTimedOut marks a TimedOut outcome that was forced by the
	// wall-clock watchdog (RunWatched deadline) rather than the simulated
	// cycle limit — the host-side pathological-slowness case.
	WallTimedOut bool
	Assert       bool // simulated-hardware assertion (the Assert class)
	AssertMsg    string
	ExitCode     uint32
	Stdout       []byte
	Truncated    bool
	Cycles       uint64
	Committed    uint64
	KillMsg      string
	PanicMsg     string
}

// Run executes the loaded program until it stops or maxCycles elapse
// (maxCycles == 0 means no limit). If inject is non-nil it is invoked once,
// at cycle injectAt, to flip fault bits in the machine state.
// Simulated-hardware assertions (mem.AssertError panics) are recovered and
// reported in the outcome; any other panic is a simulator bug and
// propagates.
func (m *Machine) Run(maxCycles, injectAt uint64, inject func(*Machine)) (out Outcome) {
	return m.RunObserved(maxCycles, injectAt, inject, nil)
}

// RunObserved is Run with a per-cycle observer: if onCycle is non-nil it is
// invoked after every Core.Cycle(), which is how the forensics layer steps
// a lockstep shadow machine and compares architectural digests. A nil
// onCycle makes RunObserved identical to Run.
func (m *Machine) RunObserved(maxCycles, injectAt uint64, inject func(*Machine), onCycle func(*Machine)) Outcome {
	return m.RunWatched(maxCycles, injectAt, inject, onCycle, time.Time{})
}

// watchdogStride is how many simulated cycles elapse between wall-clock
// checks in RunWatched. A power of two so the gate is a mask, cheap enough
// to leave in the per-cycle loop; the first iteration always checks, so an
// already-expired deadline stops the run before any simulated work.
const watchdogStride = 4096

// RunWatched is RunObserved with a wall-clock watchdog: if deadline is
// nonzero and passes while the simulation is still running, the run stops
// with TimedOut and WallTimedOut set, complementing the simulated-cycle
// maxCycles limit. The deadline is polled every watchdogStride cycles, so
// the check costs nothing measurable yet a wedged or pathologically slow
// sample is bounded by real time, not just simulated time.
func (m *Machine) RunWatched(maxCycles, injectAt uint64, inject func(*Machine), onCycle func(*Machine), deadline time.Time) (out Outcome) {
	defer func() {
		if r := recover(); r != nil {
			ae, ok := r.(mem.AssertError)
			if !ok {
				panic(r)
			}
			out = m.outcome()
			out.Assert = true
			out.AssertMsg = ae.Msg
		}
	}()
	watch := !deadline.IsZero()
	ticks := uint64(0)
	for m.Core.Stopped() == cpu.StopNone {
		if inject != nil && m.Core.Cycles() >= injectAt {
			inject(m)
			inject = nil
		}
		if maxCycles > 0 && m.Core.Cycles() >= maxCycles {
			out = m.outcome()
			out.TimedOut = true
			return out
		}
		if watch && ticks&(watchdogStride-1) == 0 && time.Now().After(deadline) {
			out = m.outcome()
			out.TimedOut = true
			out.WallTimedOut = true
			return out
		}
		ticks++
		m.Core.Cycle()
		if onCycle != nil {
			onCycle(m)
		}
	}
	return m.outcome()
}

// ArchDigest summarizes the architecturally visible state of the machine —
// committed instructions, architectural registers, output length and exit
// code — into one comparable word. Two machines running the same program in
// lockstep keep equal digests until a fault becomes architecturally
// visible; the cycle the digests first differ is the forensics layer's
// divergence cycle.
func (m *Machine) ArchDigest() uint64 {
	h := m.Core.ArchHash()
	h = (h ^ uint64(len(m.Kern.Stdout))) * 0x100000001b3
	h = (h ^ uint64(m.Kern.ExitCode)) * 0x100000001b3
	return h
}

// Occupancy samples the valid-entry fraction of every injectable
// structure, the first-order predictor of its AVF (a fault in an invalid
// entry is masked). EXPERIMENTS.md uses these numbers to relate the
// measured AVFs to the paper's full-system occupancies.
func (m *Machine) Occupancy() map[string]float64 {
	return map[string]float64{
		"L1I":       m.L1I.Occupancy(),
		"L1D":       m.L1D.Occupancy(),
		"L1D.dirty": m.L1D.DirtyFraction(),
		"L2":        m.L2.Occupancy(),
		"L2.dirty":  m.L2.DirtyFraction(),
		"ITLB":      m.ITLB.Occupancy(),
		"DTLB":      m.DTLB.Occupancy(),
	}
}

// ramPort adapts RAM to the walker's port, charging the memory latency.
type ramPort struct{ ram *mem.RAM }

func (p ramPort) ReadWord(pa uint32) (uint32, int) {
	return p.ram.ReadWord(pa), p.ram.Latency()
}

func (m *Machine) outcome() Outcome {
	return Outcome{
		Stop:      m.Core.Stopped(),
		ExitCode:  m.Kern.ExitCode,
		Stdout:    m.Kern.Stdout,
		Truncated: m.Kern.Truncated,
		Cycles:    m.Core.Cycles(),
		Committed: m.Core.Committed,
		KillMsg:   m.Kern.KillMsg,
		PanicMsg:  m.Kern.PanicMsg,
	}
}
