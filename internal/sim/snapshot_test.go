package sim

import (
	"reflect"
	"testing"

	"mbusim/internal/asm"
)

// snapshotProg exercises memory, the heap and stdout so a mid-run snapshot
// carries non-trivial state in every component.
const snapshotProg = `
_start:
    li r4, #0
    la r5, buf
sloop:
    add r6, r4, r4
    str r6, [r5, #0]
    ldr r6, [r5, #0]
    addi r4, r4, #1
    cmp r4, #400
    b.lt sloop
    li r0, #1
    la r1, msg
    li r2, #5
    li r7, #4
    syscall
    li r0, #7
    li r7, #1
    syscall
.data
msg: .ascii "done\n"
.align 4
buf: .space 4
`

func loadSnapshotProg(t *testing.T) *Machine {
	t.Helper()
	prog, err := asm.Assemble(snapshotProg)
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig())
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSnapshotContinuesBitIdentically is the machine-level contract: a
// machine restored from a mid-run snapshot finishes with the exact outcome
// of the machine it was forked from.
func TestSnapshotContinuesBitIdentically(t *testing.T) {
	m := loadSnapshotProg(t)
	mid := m.Run(1000, 0, nil)
	if !mid.TimedOut {
		t.Fatalf("program finished before the snapshot point: %+v", mid)
	}
	snap := m.Snapshot()

	want := m.Run(0, 0, nil)
	if want.Stop.String() != "exit" || want.ExitCode != 7 {
		t.Fatalf("original run failed: %+v", want)
	}

	for i := 0; i < 2; i++ { // restore twice: snapshots are reusable
		r := RestoreMachine(snap)
		if r.Core.Cycles() != 1000 {
			t.Fatalf("restored machine at cycle %d, want 1000", r.Core.Cycles())
		}
		got := r.Run(0, 0, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("restored run diverged:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestSnapshotMidRunMatchesScratch checks the fast-forward identity used
// by the campaign: restoring a cycle-N snapshot and running with an
// injection callback at cycle >= N is bit-identical to a from-scratch run
// with the same callback.
func TestSnapshotMidRunMatchesScratch(t *testing.T) {
	m := loadSnapshotProg(t)
	m.Run(750, 0, nil)
	snap := m.Snapshot()

	inject := func(mm *Machine) {
		// A visible fault: flip data bits in an L1D line and corrupt a TLB
		// entry so the continuation genuinely depends on restored state.
		mm.L1D.FlipBit(3, 40)
		mm.DTLB.FlipBit(1, 31)
		mm.Core.RegFile().FlipBit(9, 5)
	}

	scratch := loadSnapshotProg(t)
	want := scratch.Run(200_000, 900, inject)

	r := RestoreMachine(snap)
	got := r.Run(200_000, 900, inject)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fast-forwarded faulted run diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestSnapshotIsolation: machines restored from one snapshot are fully
// independent of each other and of the snapshot.
func TestSnapshotIsolation(t *testing.T) {
	m := loadSnapshotProg(t)
	m.Run(500, 0, nil)
	snap := m.Snapshot()

	a := RestoreMachine(snap)
	b := RestoreMachine(snap)
	// Corrupt a heavily, then run b to completion untouched.
	for row := 0; row < 8; row++ {
		a.L1D.FlipBit(row, 0)
		a.L2.FlipBit(row, 0)
		a.ITLB.FlipBit(row%a.ITLB.Rows(), 31)
	}
	a.Run(5000, 0, nil)

	got := b.Run(0, 0, nil)
	m2 := loadSnapshotProg(t)
	want := m2.Run(0, 0, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sibling restore was corrupted:\n got %+v\nwant %+v", got, want)
	}
}
