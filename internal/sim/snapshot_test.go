package sim

import (
	"reflect"
	"testing"

	"mbusim/internal/asm"
)

// snapshotProg exercises memory, the heap and stdout so a mid-run snapshot
// carries non-trivial state in every component.
const snapshotProg = `
_start:
    li r4, #0
    la r5, buf
sloop:
    add r6, r4, r4
    str r6, [r5, #0]
    ldr r6, [r5, #0]
    addi r4, r4, #1
    cmp r4, #400
    b.lt sloop
    li r0, #1
    la r1, msg
    li r2, #5
    li r7, #4
    syscall
    li r0, #7
    li r7, #1
    syscall
.data
msg: .ascii "done\n"
.align 4
buf: .space 4
`

func loadSnapshotProg(t *testing.T) *Machine {
	t.Helper()
	prog, err := asm.Assemble(snapshotProg)
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig())
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSnapshotContinuesBitIdentically is the machine-level contract: a
// machine restored from a mid-run snapshot finishes with the exact outcome
// of the machine it was forked from.
func TestSnapshotContinuesBitIdentically(t *testing.T) {
	m := loadSnapshotProg(t)
	mid := m.Run(1000, 0, nil)
	if !mid.TimedOut {
		t.Fatalf("program finished before the snapshot point: %+v", mid)
	}
	snap := m.Snapshot()

	want := m.Run(0, 0, nil)
	if want.Stop.String() != "exit" || want.ExitCode != 7 {
		t.Fatalf("original run failed: %+v", want)
	}

	for i := 0; i < 2; i++ { // restore twice: snapshots are reusable
		r := RestoreMachine(snap)
		if r.Core.Cycles() != 1000 {
			t.Fatalf("restored machine at cycle %d, want 1000", r.Core.Cycles())
		}
		got := r.Run(0, 0, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("restored run diverged:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestSnapshotMidRunMatchesScratch checks the fast-forward identity used
// by the campaign: restoring a cycle-N snapshot and running with an
// injection callback at cycle >= N is bit-identical to a from-scratch run
// with the same callback.
func TestSnapshotMidRunMatchesScratch(t *testing.T) {
	m := loadSnapshotProg(t)
	m.Run(750, 0, nil)
	snap := m.Snapshot()

	inject := func(mm *Machine) {
		// A visible fault: flip data bits in an L1D line and corrupt a TLB
		// entry so the continuation genuinely depends on restored state.
		mm.L1D.FlipBit(3, 40)
		mm.DTLB.FlipBit(1, 31)
		mm.Core.RegFile().FlipBit(9, 5)
	}

	scratch := loadSnapshotProg(t)
	want := scratch.Run(200_000, 900, inject)

	r := RestoreMachine(snap)
	got := r.Run(200_000, 900, inject)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fast-forwarded faulted run diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestSnapshotIsolation: machines restored from one snapshot are fully
// independent of each other and of the snapshot.
func TestSnapshotIsolation(t *testing.T) {
	m := loadSnapshotProg(t)
	m.Run(500, 0, nil)
	snap := m.Snapshot()

	a := RestoreMachine(snap)
	b := RestoreMachine(snap)
	// Corrupt a heavily, then run b to completion untouched.
	for row := 0; row < 8; row++ {
		a.L1D.FlipBit(row, 0)
		a.L2.FlipBit(row, 0)
		a.ITLB.FlipBit(row%a.ITLB.Rows(), 31)
	}
	a.Run(5000, 0, nil)

	got := b.Run(0, 0, nil)
	m2 := loadSnapshotProg(t)
	want := m2.Run(0, 0, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sibling restore was corrupted:\n got %+v\nwant %+v", got, want)
	}
}

// TestDeltaRestoreContinuesBitIdentically is the machine-level contract of
// the delta-restore fast path: one machine, rewound by RestoreDelta
// between faulted runs, reproduces the exact outcome of a fresh machine
// fully restored from the same snapshot — including after runs that
// dirtied caches, TLBs, RAM, the kernel and the core.
func TestDeltaRestoreContinuesBitIdentically(t *testing.T) {
	m := loadSnapshotProg(t)
	m.Run(750, 0, nil)
	snap := m.Snapshot()

	inject := func(mm *Machine) {
		mm.L1D.FlipBit(3, 40)
		mm.DTLB.FlipBit(1, 31)
		mm.Core.RegFile().FlipBit(9, 5)
	}
	want := RestoreMachine(snap).Run(200_000, 900, inject)

	dirty := m.TrackDirty(snap)
	for round := 0; round < 3; round++ {
		if round > 0 {
			dirty = m.RestoreDelta(snap, dirty)
			if !m.EqualsSnapshot(snap) {
				t.Fatalf("round %d: machine differs from snapshot after RestoreDelta", round)
			}
		}
		got := m.Run(200_000, 900, inject)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: delta-restored run diverged:\n got %+v\nwant %+v", round, got, want)
		}
	}
}

// TestRestoreDeltaFallsBack: RestoreDelta silently falls back to a full
// restore when the dirty handle is nil, armed against a different
// snapshot, or owned by another machine — the caller never has to care.
func TestRestoreDeltaFallsBack(t *testing.T) {
	m := loadSnapshotProg(t)
	m.Run(500, 0, nil)
	s1 := m.Snapshot()
	m.Run(900, 0, nil)
	s2 := m.Snapshot()

	// Handle armed on s2, restore requested against s1: must fall back.
	dirty := m.TrackDirty(s2)
	m.Run(1200, 0, nil)
	dirty = m.RestoreDelta(s1, dirty)
	if !m.EqualsSnapshot(s1) {
		t.Fatal("cross-snapshot RestoreDelta did not restore s1 exactly")
	}

	// Nil handle: full restore plus arming.
	m.Run(1200, 0, nil)
	dirty = m.RestoreDelta(s2, nil)
	if !m.EqualsSnapshot(s2) {
		t.Fatal("nil-handle RestoreDelta did not restore s2 exactly")
	}

	// Handle owned by another machine: must fall back, not corrupt.
	other := RestoreMachine(s2)
	otherDirty := other.TrackDirty(s2)
	m.Run(1500, 0, nil)
	_ = m.RestoreDelta(s2, otherDirty)
	if !m.EqualsSnapshot(s2) {
		t.Fatal("foreign-handle RestoreDelta did not restore s2 exactly")
	}
	_ = dirty
}

// TestEqualsSnapshotDetectsEveryComponent: EqualsSnapshot must notice a
// single perturbed bit or counter in each machine component — soundness of
// the campaign's convergence exit depends on it — and accept the state
// again once the perturbation is undone.
func TestEqualsSnapshotDetectsEveryComponent(t *testing.T) {
	m := loadSnapshotProg(t)
	m.Run(800, 0, nil)
	s := m.Snapshot()
	if !m.EqualsSnapshot(s) {
		t.Fatal("machine does not equal its own snapshot")
	}

	perturb := []struct {
		name     string
		do, undo func()
	}{
		{"L1I", func() { m.L1I.FlipBit(0, 0) }, func() { m.L1I.FlipBit(0, 0) }},
		{"L1D", func() { m.L1D.FlipBit(2, 7) }, func() { m.L1D.FlipBit(2, 7) }},
		{"L2", func() { m.L2.FlipBit(5, 3) }, func() { m.L2.FlipBit(5, 3) }},
		{"ITLB", func() { m.ITLB.FlipBit(1, 31) }, func() { m.ITLB.FlipBit(1, 31) }},
		{"DTLB", func() { m.DTLB.FlipBit(2, 15) }, func() { m.DTLB.FlipBit(2, 15) }},
		{"RF", func() { m.Core.RegFile().FlipBit(4, 9) }, func() { m.Core.RegFile().FlipBit(4, 9) }},
		{"Walker", func() { m.Walker.Walks++ }, func() { m.Walker.Walks-- }},
		{"Kernel", func() { m.Kern.Stdout = append(m.Kern.Stdout, 'z') },
			func() { m.Kern.Stdout = m.Kern.Stdout[:len(m.Kern.Stdout)-1] }},
	}
	old := m.RAM.ReadWord(0)
	perturb = append(perturb, struct {
		name     string
		do, undo func()
	}{"RAM", func() { m.RAM.WriteWord(0, old^1) }, func() { m.RAM.WriteWord(0, old) }})

	for _, p := range perturb {
		p.do()
		if m.EqualsSnapshot(s) {
			t.Fatalf("%s: EqualsSnapshot missed the perturbation", p.name)
		}
		p.undo()
		if !m.EqualsSnapshot(s) {
			t.Fatalf("%s: EqualsSnapshot false after undoing the perturbation", p.name)
		}
	}
}
