package sim

import (
	"strings"
	"testing"

	"mbusim/internal/asm"
	"mbusim/internal/cpu"
)

// run assembles src, runs it to completion and returns the outcome.
func run(t *testing.T, src string) Outcome {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(DefaultConfig())
	if err := m.Load(prog); err != nil {
		t.Fatalf("load: %v", err)
	}
	out := m.Run(10_000_000, 0, nil)
	if out.TimedOut {
		t.Fatalf("timed out after %d cycles (%d committed)", out.Cycles, out.Committed)
	}
	return out
}

func wantExit(t *testing.T, out Outcome, code uint32) {
	t.Helper()
	if out.Stop != cpu.StopExit {
		t.Fatalf("stopped with %v (kill=%q panic=%q), want exit", out.Stop, out.KillMsg, out.PanicMsg)
	}
	if out.ExitCode != code {
		t.Fatalf("exit code = %d, want %d", out.ExitCode, code)
	}
}

func TestHelloWorld(t *testing.T) {
	out := run(t, `
_start:
    li r0, #1
    la r1, msg
    li r2, #6
    li r7, #4
    syscall
    li r0, #0
    li r7, #1
    syscall
.data
msg: .ascii "hello\n"
`)
	wantExit(t, out, 0)
	if string(out.Stdout) != "hello\n" {
		t.Fatalf("stdout = %q, want %q", out.Stdout, "hello\n")
	}
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..100 = 5050; exit with 5050 % 251 = 30.
	out := run(t, `
_start:
    li r1, #0      ; sum
    li r2, #1      ; i
loop:
    add r1, r1, r2
    addi r2, r2, #1
    cmp r2, #101
    b.lt loop
    li r3, #251
    urem r0, r1, r3
    li r7, #1
    syscall
`)
	wantExit(t, out, 5050%251)
}

func TestRecursiveCalls(t *testing.T) {
	// fib(10) = 55 via naive recursion with stack frames.
	out := run(t, `
_start:
    li r0, #10
    bl fib
    li r7, #1
    syscall

fib:                       ; r0 = fib(r0)
    cmp r0, #2
    b.ge fib_rec
    bx lr
fib_rec:
    subi sp, sp, #12
    str lr, [sp, #0]
    str r4, [sp, #4]
    mov r4, r0
    subi r0, r4, #1
    bl fib
    str r0, [sp, #8]
    subi r0, r4, #2
    bl fib
    ldr r1, [sp, #8]
    add r0, r0, r1
    ldr lr, [sp, #0]
    ldr r4, [sp, #4]
    addi sp, sp, #12
    bx lr
`)
	wantExit(t, out, 55)
}

func TestMemoryArrayReverse(t *testing.T) {
	// Fill a 64-word array with i*3, reverse it in place, then checksum.
	out := run(t, `
_start:
    la r1, buf
    li r2, #0
fill:
    li r3, #3
    mul r3, r2, r3
    lsli r4, r2, #2
    add r4, r1, r4
    str r3, [r4, #0]
    addi r2, r2, #1
    cmp r2, #64
    b.lt fill

    li r2, #0          ; lo index
    li r3, #63         ; hi index
rev:
    cmp r2, r3
    b.ge revdone
    lsli r4, r2, #2
    add r4, r1, r4
    lsli r5, r3, #2
    add r5, r1, r5
    ldr r6, [r4, #0]
    ldr r8, [r5, #0]
    str r8, [r4, #0]
    str r6, [r5, #0]
    addi r2, r2, #1
    subi r3, r3, #1
    b rev
revdone:
    li r2, #0
    li r0, #0
sum:
    lsli r4, r2, #2
    add r4, r1, r4
    ldr r5, [r4, #0]
    eor r0, r0, r5
    add r0, r0, r2
    addi r2, r2, #1
    cmp r2, #64
    b.lt sum
    andi r0, r0, #0xFF
    li r7, #1
    syscall
.data
.align 4
buf: .space 256
`)
	// Compute the expected checksum in Go.
	buf := make([]uint32, 64)
	for i := range buf {
		buf[i] = uint32(i * 3)
	}
	for lo, hi := 0, 63; lo < hi; lo, hi = lo+1, hi-1 {
		buf[lo], buf[hi] = buf[hi], buf[lo]
	}
	want := uint32(0)
	for i, v := range buf {
		want ^= v
		want += uint32(i)
	}
	want &= 0xFF
	wantExit(t, out, want)
}

func TestByteAndHalfAccess(t *testing.T) {
	out := run(t, `
_start:
    la r1, buf
    li r2, #0xAB
    strb r2, [r1, #0]
    li r2, #0xCDEF
    strh r2, [r1, #2]
    ldrb r3, [r1, #0]
    ldrh r4, [r1, #2]
    lsri r4, r4, #8
    add r0, r3, r4     ; 0xAB + 0xCD = 0x178
    andi r0, r0, #0xFF
    li r7, #1
    syscall
.data
.align 4
buf: .space 16
`)
	wantExit(t, out, (0xAB+0xCD)&0xFF)
}

func TestConditionCodes(t *testing.T) {
	// Exercise signed and unsigned comparisons.
	out := run(t, `
_start:
    li r0, #0
    li r1, #0xFFFFFFFF  ; -1 signed, big unsigned
    li r2, #1
    cmp r1, r2
    b.lt signed_ok      ; -1 < 1 signed
    li r0, #1
    b fail
signed_ok:
    cmp r1, r2
    b.hi unsigned_ok    ; 0xFFFFFFFF > 1 unsigned
    li r0, #2
    b fail
unsigned_ok:
    cmp r2, r2
    b.eq eq_ok
    li r0, #3
    b fail
eq_ok:
    li r0, #42
fail:
    li r7, #1
    syscall
`)
	wantExit(t, out, 42)
}

func TestDivisionSemantics(t *testing.T) {
	out := run(t, `
_start:
    li r1, #-7
    li r2, #2
    sdiv r3, r1, r2      ; -3
    li r4, #0
    sdiv r5, r1, r4      ; ARM: x/0 == 0
    li r6, #7
    udiv r8, r6, r2      ; 3
    srem r9, r1, r2      ; -1
    add r0, r3, r5
    add r0, r0, r8
    add r0, r0, r9       ; -3+0+3-1 = -1
    addi r0, r0, #2      ; 1
    li r7, #1
    syscall
`)
	wantExit(t, out, 1)
}

func TestBrkHeap(t *testing.T) {
	out := run(t, `
_start:
    li r0, #0
    li r7, #45
    syscall            ; r0 = current brk
    mov r4, r0
    addi r0, r4, #4096
    li r7, #45
    syscall            ; grow heap by one page
    li r1, #123
    str r1, [r4, #0]   ; store to the new page
    ldr r0, [r4, #0]
    li r7, #1
    syscall
`)
	wantExit(t, out, 123)
}

func TestSegfaultOnUnmapped(t *testing.T) {
	prog, err := asm.Assemble(`
_start:
    li r1, #0x00D00000
    ldr r0, [r1, #0]
    li r7, #1
    syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig())
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	out := m.Run(1_000_000, 0, nil)
	if out.Stop != cpu.StopSegv {
		t.Fatalf("stop = %v, want segfault", out.Stop)
	}
}

func TestUndefinedInstruction(t *testing.T) {
	prog, err := asm.Assemble(`
_start:
    .word 0xFFFFFFFF
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig())
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	out := m.Run(1_000_000, 0, nil)
	if out.Stop != cpu.StopUndef {
		t.Fatalf("stop = %v, want undefined-instruction", out.Stop)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// Immediately reload stored values so forwarding paths get exercised.
	out := run(t, `
_start:
    la r1, buf
    li r2, #7
    li r0, #0
    li r3, #0
loop:
    str r2, [r1, #0]
    ldr r4, [r1, #0]    ; forwarded or cache hit
    add r0, r0, r4
    addi r2, r2, #1
    addi r3, r3, #1
    cmp r3, #10
    b.lt loop
    andi r0, r0, #0xFF  ; 7+8+...+16 = 115
    li r7, #1
    syscall
.data
.align 4
buf: .space 8
`)
	wantExit(t, out, 115)
}

func TestDeterminism(t *testing.T) {
	src := `
_start:
    li r1, #0
    li r2, #0
loop:
    add r1, r1, r2
    addi r2, r2, #1
    cmp r2, #1000
    b.lt loop
    andi r0, r1, #0xFF
    li r7, #1
    syscall
`
	var cycles []uint64
	for i := 0; i < 3; i++ {
		out := run(t, src)
		wantExit(t, out, uint32(999*1000/2)&0xFF)
		cycles = append(cycles, out.Cycles)
	}
	if cycles[0] != cycles[1] || cycles[1] != cycles[2] {
		t.Fatalf("non-deterministic cycle counts: %v", cycles)
	}
}

func TestStdoutMultipleWrites(t *testing.T) {
	out := run(t, `
_start:
    li r4, #0
wloop:
    li r0, #1
    la r1, msg
    li r2, #3
    li r7, #4
    syscall
    addi r4, r4, #1
    cmp r4, #5
    b.lt wloop
    li r0, #0
    li r7, #1
    syscall
.data
msg: .ascii "ab\n"
`)
	wantExit(t, out, 0)
	if got := string(out.Stdout); got != strings.Repeat("ab\n", 5) {
		t.Fatalf("stdout = %q", got)
	}
}

func TestPaperConfigGeometry(t *testing.T) {
	cfg := PaperConfig()
	if cfg.L1Size != 32<<10 || cfg.L2Size != 512<<10 {
		t.Fatalf("paper config sizes: L1=%d L2=%d", cfg.L1Size, cfg.L2Size)
	}
	// A machine with the literal Table I geometry still runs programs.
	prog, err := asm.Assemble(`
_start:
    li r0, #5
    li r7, #1
    syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(cfg)
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	out := m.Run(100_000, 0, nil)
	wantExit(t, out, 5)
	if m.L1I.Rows() != 512 || m.L2.Rows() != 8192 {
		t.Fatalf("paper geometry rows: L1I=%d L2=%d", m.L1I.Rows(), m.L2.Rows())
	}
}
