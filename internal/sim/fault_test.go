package sim

import (
	"bytes"
	"testing"

	"mbusim/internal/asm"
	"mbusim/internal/cpu"
)

// loadProg builds a machine around src.
func loadProg(t *testing.T, src string) *Machine {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig())
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	return m
}

// dataScrubber is a program that repeatedly reads a buffer and prints a
// checksum, so corrupted data-cache bits become output corruption.
const dataScrubber = `
_start:
    la r1, buf
    li r2, #0
    li r3, #0
fill:
    strr r2, [r1, r3]
    addi r3, r3, #4
    cmp r3, #512
    b.lt fill
    li r4, #0          ; outer iterations
outer:
    li r3, #0
    li r5, #0          ; checksum
sum:
    ldrr r6, [r1, r3]
    eor r5, r5, r6
    add r5, r5, r3
    addi r3, r3, #4
    cmp r3, #512
    b.lt sum
    addi r4, r4, #1
    cmp r4, #40
    b.lt outer
    la r1, out         ; print checksum bytes
    str r5, [r1, #0]
    li r0, #1
    li r2, #4
    li r7, #4
    syscall
    li r0, #0
    li r7, #1
    syscall
.data
.align 4
buf: .space 512
out: .word 0
`

func TestL1DFaultCausesSDC(t *testing.T) {
	gold := loadProg(t, dataScrubber).Run(10_000_000, 0, nil)
	if gold.Stop != cpu.StopExit {
		t.Fatalf("golden stop = %v", gold.Stop)
	}
	// Flip data bits in every valid, dirty line mid-run: the checksum the
	// program prints afterwards must differ.
	m := loadProg(t, dataScrubber)
	out := m.Run(10_000_000, gold.Cycles/2, func(m *Machine) {
		state := m.L1D.StateBits()
		for row := 0; row < m.L1D.Rows(); row++ {
			if _, valid, dirty, _ := m.L1D.LineState(row); valid && dirty {
				m.L1D.FlipBit(row, state+5)
			}
		}
	})
	if out.Stop != cpu.StopExit {
		t.Fatalf("faulty stop = %v (%s)", out.Stop, out.KillMsg)
	}
	if bytes.Equal(out.Stdout, gold.Stdout) {
		t.Fatal("corrupting every dirty L1D line left the output intact")
	}
}

func TestL1IFaultCausesCrashOrHang(t *testing.T) {
	// Flip the opcode bit of every valid L1I line: the hot loop's
	// instructions become undefined or wild; expect anything but a clean
	// identical exit.
	gold := loadProg(t, dataScrubber).Run(10_000_000, 0, nil)
	m := loadProg(t, dataScrubber)
	out := m.Run(4*gold.Cycles, gold.Cycles/2, func(m *Machine) {
		state := m.L1I.StateBits()
		for row := 0; row < m.L1I.Rows(); row++ {
			if _, valid, _, _ := m.L1I.LineState(row); valid {
				// Flip bit 31 (top opcode bit) of the first word.
				m.L1I.FlipBit(row, state+31)
			}
		}
	})
	if out.Stop == cpu.StopExit && !out.TimedOut && bytes.Equal(out.Stdout, gold.Stdout) {
		t.Fatal("corrupting every valid L1I line was invisible")
	}
}

func TestDTLBPFNFaultCausesAssert(t *testing.T) {
	// Flip the top PFN bit of every DTLB entry: translated physical
	// addresses leave the system map and the hardware asserts.
	gold := loadProg(t, dataScrubber).Run(10_000_000, 0, nil)
	m := loadProg(t, dataScrubber)
	out := m.Run(4*gold.Cycles, gold.Cycles/2, func(m *Machine) {
		for row := 0; row < m.DTLB.Rows(); row++ {
			m.DTLB.FlipBit(row, 14) // top PFN bit
		}
	})
	if !out.Assert {
		t.Fatalf("expected an assert outcome, got stop=%v timeout=%v stdout-equal=%v",
			out.Stop, out.TimedOut, bytes.Equal(out.Stdout, gold.Stdout))
	}
}

func TestITLBFaultDisturbsControl(t *testing.T) {
	// Corrupt the low PFN bits of every ITLB entry: instruction fetch
	// reads the wrong frames. Expect a crash, hang or assert.
	gold := loadProg(t, dataScrubber).Run(10_000_000, 0, nil)
	m := loadProg(t, dataScrubber)
	out := m.Run(4*gold.Cycles, gold.Cycles/2, func(m *Machine) {
		for row := 0; row < m.ITLB.Rows(); row++ {
			m.ITLB.FlipBit(row, 1)
			m.ITLB.FlipBit(row, 2)
		}
	})
	clean := out.Stop == cpu.StopExit && !out.TimedOut && !out.Assert &&
		bytes.Equal(out.Stdout, gold.Stdout)
	if clean {
		t.Fatal("ITLB corruption was invisible")
	}
}

func TestL2PageTableFaultPanicsKernel(t *testing.T) {
	// Find the L2 lines caching page-table entries and set a PFN bit that
	// pushes mapped frames outside RAM: the next walk must return a
	// corrupted PTE, which surfaces as a kernel panic (or an assert if the
	// stale TLB entry is used first).
	m := loadProg(t, dataScrubber)
	// Warm the machine so page-table lines are cached in L2.
	out := m.Run(10_000_000, 2000, func(m *Machine) {
		// The page tables live in the first frames; their lines have
		// physical addresses < 16 KB. Corrupt every valid L2 line in that
		// range by setting PTE bit 13 (frame out of the 8K-frame map).
		state := m.L2.StateBits()
		for row := 0; row < m.L2.Rows(); row++ {
			tag, valid, _, _ := m.L2.LineState(row)
			if valid && tag == 0 { // low-address lines: page tables
				for w := 0; w < 16; w++ {
					m.L2.FlipBit(row, state+w*32+13)
				}
			}
		}
		// Force future translations to re-walk.
		m.ITLB.Invalidate()
		m.DTLB.Invalidate()
	})
	if out.Stop != cpu.StopKernelPanic && !out.Assert {
		t.Fatalf("expected kernel panic or assert, got stop=%v timeout=%v", out.Stop, out.TimedOut)
	}
}

func TestInjectionAtCycleZero(t *testing.T) {
	// Injection before the first cycle must be legal (empty structures).
	m := loadProg(t, dataScrubber)
	fired := false
	out := m.Run(10_000_000, 0, func(m *Machine) {
		fired = true
		m.L1D.FlipBit(0, 0)
	})
	if !fired {
		t.Fatal("injector never fired")
	}
	// Flipping the valid bit of an untouched line creates a garbage line;
	// the run may or may not be masked, but it must terminate.
	if out.Stop == cpu.StopNone && !out.TimedOut && !out.Assert {
		t.Fatal("run did not terminate")
	}
}

func TestTimeoutOutcome(t *testing.T) {
	m := loadProg(t, `
_start:
    b _start
`)
	out := m.Run(50_000, 0, nil)
	if !out.TimedOut && out.Stop != cpu.StopDeadlock {
		t.Fatalf("infinite loop: stop=%v timedout=%v", out.Stop, out.TimedOut)
	}
}

func TestMaskedInjection(t *testing.T) {
	// A flip in an invalid cache line of an idle set must be masked.
	gold := loadProg(t, dataScrubber).Run(10_000_000, 0, nil)
	m := loadProg(t, dataScrubber)
	out := m.Run(10_000_000, gold.Cycles/2, func(m *Machine) {
		// Highest row: the scrubber's tiny footprint never touches it.
		m.L1D.FlipBit(m.L1D.Rows()-1, m.L1D.Cols()-1)
	})
	if out.Stop != cpu.StopExit || !bytes.Equal(out.Stdout, gold.Stdout) || out.Cycles != gold.Cycles {
		t.Fatal("fault in an idle line was not masked")
	}
}

func TestOccupancySnapshot(t *testing.T) {
	m := loadProg(t, dataScrubber)
	empty := m.Occupancy()
	if empty["L1D"] != 0 || empty["DTLB"] != 0 {
		t.Fatalf("fresh machine not empty: %v", empty)
	}
	for m.Core.Cycles() < 5000 {
		m.Core.Cycle()
	}
	warm := m.Occupancy()
	for _, key := range []string{"L1I", "L1D", "L2", "ITLB", "DTLB"} {
		if warm[key] <= 0 || warm[key] > 1 {
			t.Fatalf("%s occupancy = %f after warmup", key, warm[key])
		}
	}
	if warm["L1D.dirty"] <= 0 {
		t.Fatal("the scrubber's fill loop must leave dirty L1D lines")
	}
}
