package sim

import (
	"mbusim/internal/cache"
	"mbusim/internal/cpu"
	"mbusim/internal/kernel"
	"mbusim/internal/mem"
	"mbusim/internal/tlb"
	"mbusim/internal/vm"
)

// Snapshot is a deep copy of a whole machine's state, taken mid-run (or
// before the first cycle). A machine restored from a snapshot continues
// execution bit-identically to the machine the snapshot was taken from:
// same cycle counts, same memory traffic, same outcome. Snapshots are
// immutable once taken and can be restored any number of times, including
// concurrently — the injection campaign uses them as per-workload golden
// checkpoints to fast-forward each run to its injection cycle.
type Snapshot struct {
	Cfg Config

	ram        *mem.Snapshot
	l1i, l1d   *cache.Snapshot
	l2         *cache.Snapshot
	itlb, dtlb *tlb.Snapshot
	walker     *vm.WalkerSnapshot
	kern       *kernel.Snapshot
	core       *cpu.Snapshot
}

// Snapshot captures the full machine state.
func (m *Machine) Snapshot() *Snapshot {
	return &Snapshot{
		Cfg:    m.Cfg,
		ram:    m.RAM.Snapshot(),
		l1i:    m.L1I.Snapshot(),
		l1d:    m.L1D.Snapshot(),
		l2:     m.L2.Snapshot(),
		itlb:   m.ITLB.Snapshot(),
		dtlb:   m.DTLB.Snapshot(),
		walker: m.Walker.Snapshot(),
		kern:   m.Kern.Snapshot(),
		core:   m.Core.Snapshot(),
	}
}

// RestoreFrom overwrites every component's state with the snapshot's. The
// machine must have been built with the snapshot's Config (same
// geometries); a mismatch is a programming error and panics inside the
// component restores.
func (m *Machine) RestoreFrom(s *Snapshot) {
	m.RAM.Restore(s.ram)
	m.L1I.Restore(s.l1i)
	m.L1D.Restore(s.l1d)
	m.L2.Restore(s.l2)
	m.ITLB.Restore(s.itlb)
	m.DTLB.Restore(s.dtlb)
	m.Walker.Restore(s.walker)
	m.Kern.Restore(s.kern)
	m.Core.Restore(s.core)
}

// EqualsSnapshot reports whether the machine's complete mutable state —
// every field a Snapshot captures, including performance counters and
// replacement metadata — bit-equals the snapshot. Determinism then
// guarantees that the machine's future execution is identical to that of
// the machine the snapshot was taken from; the campaign's convergence exit
// uses this to cut a faulty run short once every trace of its fault has
// been scrubbed. Components are ordered so that a perturbed machine fails
// on cheap scalar compares (core progress counters) before the byte arrays
// are walked.
func (m *Machine) EqualsSnapshot(s *Snapshot) bool {
	return m.Core.EqualsSnapshot(s.core) &&
		m.Kern.EqualsSnapshot(s.kern) &&
		m.Walker.EqualsSnapshot(s.walker) &&
		m.ITLB.EqualsSnapshot(s.itlb) &&
		m.DTLB.EqualsSnapshot(s.dtlb) &&
		m.L1I.EqualsSnapshot(s.l1i) &&
		m.L1D.EqualsSnapshot(s.l1d) &&
		m.L2.EqualsSnapshot(s.l2) &&
		m.RAM.EqualsSnapshot(s.ram)
}

// RestoreMachine builds a fresh machine in the snapshot's configuration
// and restores the snapshot into it. The result is independent of both the
// snapshot and every other machine restored from it.
func RestoreMachine(s *Snapshot) *Machine {
	m := New(s.Cfg)
	m.RestoreFrom(s)
	return m
}
