package sim

import (
	"testing"

	"mbusim/internal/asm"
)

// sumSrc runs long enough (hundreds of cycles) for a mid-run injection.
const sumSrc = `
_start:
    li r1, #0      ; sum
    li r2, #1      ; i
loop:
    add r1, r1, r2
    addi r2, r2, #1
    cmp r2, #101
    b.lt loop
    li r3, #251
    urem r0, r1, r3
    li r7, #1
    syscall
`

func newSumMachine(t *testing.T) *Machine {
	t.Helper()
	prog, err := asm.Assemble(sumSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(DefaultConfig())
	if err := m.Load(prog); err != nil {
		t.Fatalf("load: %v", err)
	}
	return m
}

// TestRunObservedMatchesRun: a nil observer must not perturb execution.
func TestRunObservedMatchesRun(t *testing.T) {
	a := newSumMachine(t).Run(1_000_000, 0, nil)
	b := newSumMachine(t).RunObserved(1_000_000, 0, nil, nil)
	if a.Cycles != b.Cycles || a.ExitCode != b.ExitCode || a.Committed != b.Committed {
		t.Fatalf("RunObserved diverged from Run: %+v vs %+v", b, a)
	}
}

// TestLockstepDigestsStayEqual: two identical machines stepped in lockstep
// keep equal architectural digests for the whole fault-free run.
func TestLockstepDigestsStayEqual(t *testing.T) {
	m := newSumMachine(t)
	shadow := newSumMachine(t)
	cycles := 0
	m.RunObserved(1_000_000, 0, nil, func(mm *Machine) {
		shadow.Core.Cycle()
		cycles++
		if mm.ArchDigest() != shadow.ArchDigest() {
			t.Fatalf("digests diverged at cycle %d without a fault", mm.Core.Cycles())
		}
	})
	if cycles == 0 {
		t.Fatal("observer never ran")
	}
}

// TestLockstepDetectsInjectedDivergence: corrupting an architectural
// register mid-run makes the shadow comparison fire at (or after) the
// injection cycle, and stepping the shadow past its own stop stays a no-op.
func TestLockstepDetectsInjectedDivergence(t *testing.T) {
	m := newSumMachine(t)
	shadow := newSumMachine(t)
	const injectAt = 200
	var divergeAt uint64
	inject := func(mm *Machine) {
		mm.Core.SetArchReg(1, 0xDEADBEEF) // clobber the running sum
	}
	out := m.RunObserved(1_000_000, injectAt, inject, func(mm *Machine) {
		shadow.Core.Cycle()
		if divergeAt == 0 && mm.ArchDigest() != shadow.ArchDigest() {
			divergeAt = mm.Core.Cycles()
		}
	})
	if out.TimedOut {
		t.Fatalf("timed out: %+v", out)
	}
	if divergeAt == 0 {
		t.Fatal("no divergence observed after clobbering the architectural sum")
	}
	if divergeAt < injectAt {
		t.Fatalf("divergence at cycle %d precedes injection at %d", divergeAt, injectAt)
	}
	golden := newSumMachine(t).Run(1_000_000, 0, nil)
	if out.ExitCode == golden.ExitCode {
		t.Fatalf("clobbered run still exited with the golden code %d", golden.ExitCode)
	}
}
