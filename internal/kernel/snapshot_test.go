package kernel

import (
	"reflect"
	"testing"

	"mbusim/internal/tlb"
)

func TestKernelSnapshotRoundTrip(t *testing.T) {
	k, _, _ := newKernelEnv()
	prog := mustProg(t, `
_start:
    nop
.data
val: .word 42
`)
	if _, _, err := k.Load(prog); err != nil {
		t.Fatal(err)
	}
	k.Stdout = append(k.Stdout, []byte("hello")...)
	k.sysBrk(k.HeapStart() + 3*tlb.PageSize)

	s1 := k.Snapshot()
	// Mutate everything the snapshot covers, then restore.
	k.Stdout = append(k.Stdout, []byte(" world")...)
	k.sysBrk(k.HeapStart() + 6*tlb.PageSize)
	k.ExitCode = 9
	k.KillMsg = "killed"
	k.PanicMsg = "panicked"
	k.Truncated = true
	k.Restore(s1)

	s2 := k.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("kernel state after Restore(Snapshot()) differs from the snapshot")
	}
	if string(k.Stdout) != "hello" || k.Brk() != k.HeapStart()+3*tlb.PageSize {
		t.Fatalf("restored kernel state wrong: stdout=%q brk=%#x", k.Stdout, k.Brk())
	}
}

func TestKernelSnapshotNoAliasing(t *testing.T) {
	k, _, _ := newKernelEnv()
	prog := mustProg(t, `
_start:
    nop
`)
	if _, _, err := k.Load(prog); err != nil {
		t.Fatal(err)
	}
	k.Stdout = []byte("golden")
	s := k.Snapshot()

	// Mutating the restored kernel's stdout must not reach the snapshot.
	k.Restore(s)
	k.Stdout = append(k.Stdout, []byte("-dirty")...)
	copy(k.Stdout, "XXXXXX")

	k2, _, _ := newKernelEnv()
	k2.Restore(s)
	if string(k2.Stdout) != "golden" {
		t.Fatalf("snapshot mutated through a restored kernel: stdout=%q", k2.Stdout)
	}
}

// TestKernelDeltaRestoreRoundTrip pins the kernel's one-bit dirty
// tracking: every post-boot kernel mutation originates in Syscall, which
// marks the kernel dirty before mutating (so a mid-syscall panic cannot
// leave unmarked mutated state), and RestoreDirty rewinds exactly when —
// and only when — the mark is set.
func TestKernelDeltaRestoreRoundTrip(t *testing.T) {
	k, _, _ := newKernelEnv()
	prog := mustProg(t, `
_start:
    nop
.data
val: .word 42
`)
	if _, _, err := k.Load(prog); err != nil {
		t.Fatal(err)
	}
	k.Stdout = append(k.Stdout, []byte("hello")...)
	s := k.Snapshot()

	k.TrackDirty()
	for round := 0; round < 3; round++ {
		// Mutate the way Syscall does: mark first, then mutate.
		k.dirty = true
		k.sysBrk(k.HeapStart() + 5*tlb.PageSize)
		k.Stdout = append(k.Stdout, []byte(" world")...)
		k.ExitCode = 9
		k.RestoreDirty(s)
		if !k.EqualsSnapshot(s) {
			t.Fatalf("round %d: EqualsSnapshot false after delta restore", round)
		}
		if !reflect.DeepEqual(k.Snapshot(), s) {
			t.Fatalf("round %d: delta-restored kernel re-snapshots differently", round)
		}
	}

	// With no syscall since arming, RestoreDirty must be a no-op — that is
	// the whole point of the single-bit scheme.
	k.RestoreDirty(s)
	if !k.EqualsSnapshot(s) {
		t.Fatal("no-op RestoreDirty perturbed kernel state")
	}
}

// TestKernelEqualsSnapshot: the equality check accepts the snapshotted
// state and rejects output and allocator differences.
func TestKernelEqualsSnapshot(t *testing.T) {
	k, _, _ := newKernelEnv()
	prog := mustProg(t, `
_start:
    nop
`)
	if _, _, err := k.Load(prog); err != nil {
		t.Fatal(err)
	}
	k.Stdout = append(k.Stdout, 'x')
	s := k.Snapshot()
	if !k.EqualsSnapshot(s) {
		t.Fatal("kernel does not equal its own snapshot")
	}
	k.Stdout = append(k.Stdout, 'y')
	if k.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot missed appended stdout")
	}
	k.Stdout = k.Stdout[:len(k.Stdout)-1]
	if !k.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot false after truncating stdout back")
	}
	k.ExitCode = 3
	if k.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot missed a changed exit code")
	}
}
