package kernel

import (
	"reflect"
	"testing"

	"mbusim/internal/tlb"
)

func TestKernelSnapshotRoundTrip(t *testing.T) {
	k, _, _ := newKernelEnv()
	prog := mustProg(t, `
_start:
    nop
.data
val: .word 42
`)
	if _, _, err := k.Load(prog); err != nil {
		t.Fatal(err)
	}
	k.Stdout = append(k.Stdout, []byte("hello")...)
	k.sysBrk(k.HeapStart() + 3*tlb.PageSize)

	s1 := k.Snapshot()
	// Mutate everything the snapshot covers, then restore.
	k.Stdout = append(k.Stdout, []byte(" world")...)
	k.sysBrk(k.HeapStart() + 6*tlb.PageSize)
	k.ExitCode = 9
	k.KillMsg = "killed"
	k.PanicMsg = "panicked"
	k.Truncated = true
	k.Restore(s1)

	s2 := k.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("kernel state after Restore(Snapshot()) differs from the snapshot")
	}
	if string(k.Stdout) != "hello" || k.Brk() != k.HeapStart()+3*tlb.PageSize {
		t.Fatalf("restored kernel state wrong: stdout=%q brk=%#x", k.Stdout, k.Brk())
	}
}

func TestKernelSnapshotNoAliasing(t *testing.T) {
	k, _, _ := newKernelEnv()
	prog := mustProg(t, `
_start:
    nop
`)
	if _, _, err := k.Load(prog); err != nil {
		t.Fatal(err)
	}
	k.Stdout = []byte("golden")
	s := k.Snapshot()

	// Mutating the restored kernel's stdout must not reach the snapshot.
	k.Restore(s)
	k.Stdout = append(k.Stdout, []byte("-dirty")...)
	copy(k.Stdout, "XXXXXX")

	k2, _, _ := newKernelEnv()
	k2.Restore(s)
	if string(k2.Stdout) != "golden" {
		t.Fatalf("snapshot mutated through a restored kernel: stdout=%q", k2.Stdout)
	}
}
