package kernel

import "bytes"

// Snapshot is a deep copy of the kernel's mutable state. The memory-system
// handles (ram, l2, dcache) are wiring, not state: a restored kernel keeps
// the handles of the machine it is restored into. Snapshots are immutable
// once taken and can be restored any number of times.
type Snapshot struct {
	ptRoot    uint32
	nextFrame uint32
	booted    bool
	heapStart uint32
	brk       uint32

	stdout    []byte
	truncated bool
	exitCode  uint32
	killMsg   string
	panicMsg  string
}

// Snapshot captures the full kernel state.
func (k *Kernel) Snapshot() *Snapshot {
	return &Snapshot{
		ptRoot:    k.ptRoot,
		nextFrame: k.nextFrame,
		booted:    k.booted,
		heapStart: k.heapStart,
		brk:       k.brk,
		stdout:    append([]byte(nil), k.Stdout...),
		truncated: k.Truncated,
		exitCode:  k.ExitCode,
		killMsg:   k.KillMsg,
		panicMsg:  k.PanicMsg,
	}
}

// Restore overwrites the kernel state with the snapshot's, deep-copying so
// later kernel activity never reaches back into the snapshot.
func (k *Kernel) Restore(s *Snapshot) {
	k.ptRoot = s.ptRoot
	k.nextFrame = s.nextFrame
	k.booted = s.booted
	k.heapStart = s.heapStart
	k.brk = s.brk
	k.Stdout = append(k.Stdout[:0], s.stdout...)
	k.Truncated = s.truncated
	k.ExitCode = s.exitCode
	k.KillMsg = s.killMsg
	k.PanicMsg = s.panicMsg
}

// EqualsSnapshot reports whether the kernel state bit-equals the snapshot
// (convergence-exit support).
func (k *Kernel) EqualsSnapshot(s *Snapshot) bool {
	return k.ptRoot == s.ptRoot && k.nextFrame == s.nextFrame &&
		k.booted == s.booted && k.heapStart == s.heapStart && k.brk == s.brk &&
		k.Truncated == s.truncated && k.ExitCode == s.exitCode &&
		k.KillMsg == s.killMsg && k.PanicMsg == s.panicMsg &&
		bytes.Equal(k.Stdout, s.stdout)
}

// TrackDirty arms dirty tracking: RestoreDirty becomes a no-op until the
// next system call mutates kernel state. Call it only when the kernel
// state equals the snapshot RestoreDirty will later be given.
func (k *Kernel) TrackDirty() { k.dirty = false }

// RestoreDirty rewinds the kernel to snapshot s if any system call ran
// since TrackDirty was last armed, then re-arms tracking. Only correct
// when the kernel state equalled s at arm time.
func (k *Kernel) RestoreDirty(s *Snapshot) {
	if k.dirty {
		k.Restore(s)
		k.dirty = false
	}
}
