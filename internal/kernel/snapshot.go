package kernel

// Snapshot is a deep copy of the kernel's mutable state. The memory-system
// handles (ram, l2, dcache) are wiring, not state: a restored kernel keeps
// the handles of the machine it is restored into. Snapshots are immutable
// once taken and can be restored any number of times.
type Snapshot struct {
	ptRoot    uint32
	nextFrame uint32
	booted    bool
	heapStart uint32
	brk       uint32

	stdout    []byte
	truncated bool
	exitCode  uint32
	killMsg   string
	panicMsg  string
}

// Snapshot captures the full kernel state.
func (k *Kernel) Snapshot() *Snapshot {
	return &Snapshot{
		ptRoot:    k.ptRoot,
		nextFrame: k.nextFrame,
		booted:    k.booted,
		heapStart: k.heapStart,
		brk:       k.brk,
		stdout:    append([]byte(nil), k.Stdout...),
		truncated: k.Truncated,
		exitCode:  k.ExitCode,
		killMsg:   k.KillMsg,
		panicMsg:  k.PanicMsg,
	}
}

// Restore overwrites the kernel state with the snapshot's, deep-copying so
// later kernel activity never reaches back into the snapshot.
func (k *Kernel) Restore(s *Snapshot) {
	k.ptRoot = s.ptRoot
	k.nextFrame = s.nextFrame
	k.booted = s.booted
	k.heapStart = s.heapStart
	k.brk = s.brk
	k.Stdout = append(k.Stdout[:0], s.stdout...)
	k.Truncated = s.truncated
	k.ExitCode = s.exitCode
	k.KillMsg = s.killMsg
	k.PanicMsg = s.panicMsg
}
