package kernel

import "mbusim/internal/wire"

// EncodeWire appends the snapshot's complete state to w in the artifact
// wire format (field order versioned by sim.SnapshotFormat).
func (s *Snapshot) EncodeWire(w *wire.Writer) {
	w.U32(s.ptRoot)
	w.U32(s.nextFrame)
	w.Bool(s.booted)
	w.U32(s.heapStart)
	w.U32(s.brk)
	w.Blob(s.stdout)
	w.Bool(s.truncated)
	w.U32(s.exitCode)
	w.String(s.killMsg)
	w.String(s.panicMsg)
}

// DecodeSnapshotWire reads a snapshot encoded by EncodeWire.
func DecodeSnapshotWire(r *wire.Reader) (*Snapshot, error) {
	s := &Snapshot{
		ptRoot:    r.U32(),
		nextFrame: r.U32(),
		booted:    r.Bool(),
		heapStart: r.U32(),
		brk:       r.U32(),
		stdout:    r.Blob(),
		truncated: r.Bool(),
		exitCode:  r.U32(),
		killMsg:   r.String(),
		panicMsg:  r.String(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
