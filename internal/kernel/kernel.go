// Package kernel implements the operating-system layer of the simulated
// machine: physical frame allocation, page-table construction, program
// loading, and the system-call interface.
//
// The kernel's code runs natively (it is Go), but all of its *data* — page
// tables, the process image, the stack — lives in simulated RAM and is
// accessed through the simulated cache hierarchy, so injected faults reach
// kernel state exactly as in the paper's full-system setup: a corrupted
// page-table line read back by the page walker or by the kernel itself
// becomes a kernel panic, a corrupted user buffer handed to write() becomes
// silent data corruption, and so on.
package kernel

import (
	"fmt"

	"mbusim/internal/asm"
	"mbusim/internal/cache"
	"mbusim/internal/cpu"
	"mbusim/internal/isa"
	"mbusim/internal/mem"
	"mbusim/internal/tlb"
	"mbusim/internal/vm"
)

// Physical memory layout. RAM is deliberately smaller than the 13-bit
// physical frame space representable in a TLB entry, so that corrupted
// frame numbers can point outside the system map — the mechanism behind
// the paper's elevated Assert rates for DTLB faults.
const (
	RAMSize   = 8 << 20 // 8 MB
	NumFrames = RAMSize / tlb.PageSize
)

// Virtual memory layout.
const (
	StackTop    = 0x00F8_0000
	StackSize   = 512 << 10
	HeapMax     = 0x00E0_0000
	MaxWriteLen = 1 << 20
	MaxStdout   = 1 << 20
)

// Linux-flavoured system call numbers (ARM EABI).
const (
	SysExit  = 1
	SysWrite = 4
	SysBrk   = 45
)

// Kernel is the per-machine operating system instance. It implements
// cpu.OS.
type Kernel struct {
	ram    *mem.RAM
	l2     *cache.Cache // page-table and kernel data path
	dcache *cache.Cache // user-memory path for syscall buffers

	ptRoot    uint32 // physical address of the level-1 page table
	nextFrame uint32
	booted    bool

	heapStart uint32
	brk       uint32

	Stdout    []byte
	Truncated bool // stdout exceeded MaxStdout
	ExitCode  uint32
	KillMsg   string // why the process was killed, for diagnostics
	PanicMsg  string // why the kernel panicked

	// dirty marks that kernel state may have changed since TrackDirty was
	// armed. Every post-boot mutation (brk growth, stdout, exit/kill/panic
	// records, frame allocation) originates in Syscall, so one flag there
	// covers them all; page-table writes live in simulated RAM and are
	// tracked by the memory system, not here.
	dirty bool
}

// New creates a kernel over the given memory system.
func New(ram *mem.RAM, l2, dcache *cache.Cache) *Kernel {
	k := &Kernel{ram: ram, l2: l2, dcache: dcache}
	k.nextFrame = 1 // frame 0 stays unmapped so a zero PTE never aliases it
	k.ptRoot = k.allocFrame() << tlb.PageShift
	return k
}

// PTRoot returns the physical address of the level-1 page table for wiring
// the page walker.
func (k *Kernel) PTRoot() uint32 { return k.ptRoot }

func (k *Kernel) allocFrame() uint32 {
	if k.nextFrame >= NumFrames {
		panic("kernel: out of physical memory") // configuration error
	}
	f := k.nextFrame
	k.nextFrame++
	return f
}

// writePTE stores a page-table entry. During boot the caches are empty and
// RAM is written directly; afterwards (brk growing the heap) entries go
// through the L2 cache to stay coherent with the hardware walker, which
// reads page tables through L2.
func (k *Kernel) writePTE(pa, pte uint32) {
	if k.booted {
		k.l2.WriteWord(pa, pte)
	} else {
		k.ram.WriteWord(pa, pte)
	}
}

func (k *Kernel) readPTE(pa uint32) uint32 {
	if k.booted {
		w, _ := k.l2.ReadWord(pa)
		return w
	}
	return k.ram.ReadWord(pa)
}

// mapPage installs a mapping for vpn, allocating the level-2 table and the
// backing frame as needed, and returns the physical frame number.
func (k *Kernel) mapPage(vpn uint32, writable bool) uint32 {
	idx1 := vpn >> 7 & (vm.L1Entries - 1)
	idx2 := vpn & (vm.L2Entries - 1)
	l1pa := k.ptRoot + idx1*4
	l1e := k.readPTE(l1pa)
	var l2frame uint32
	if l1e&vm.PTEValid == 0 {
		l2frame = k.allocFrame()
		k.writePTE(l1pa, vm.PackPTE(l2frame, true, false))
	} else {
		l2frame = l1e & vm.PTEFrameMask
	}
	l2pa := l2frame<<tlb.PageShift + idx2*4
	l2e := k.readPTE(l2pa)
	if l2e&vm.PTEValid != 0 {
		return l2e & vm.PTEFrameMask // already mapped
	}
	frame := k.allocFrame()
	k.writePTE(l2pa, vm.PackPTE(frame, writable, true))
	return frame
}

// translate walks the page tables for vpn on the kernel's behalf (system
// call argument access). It distinguishes an unmapped page (the process
// passed a bad pointer) from a corrupted entry (kernel panic).
func (k *Kernel) translate(vpn uint32) (pfn uint32, fault vm.WalkFault) {
	if vpn > tlb.MaxVPN {
		return 0, vm.WalkUnmapped
	}
	idx1 := vpn >> 7 & (vm.L1Entries - 1)
	idx2 := vpn & (vm.L2Entries - 1)
	l1e := k.readPTE(k.ptRoot + idx1*4)
	if l1e&vm.PTEValid == 0 {
		return 0, vm.WalkUnmapped
	}
	l2frame := l1e & vm.PTEFrameMask
	if l2frame >= NumFrames {
		return 0, vm.WalkBadFrame
	}
	l2e := k.readPTE(l2frame<<tlb.PageShift + idx2*4)
	if l2e&vm.PTEValid == 0 {
		return 0, vm.WalkUnmapped
	}
	pfn = l2e & vm.PTEFrameMask
	if pfn >= NumFrames {
		return 0, vm.WalkBadFrame
	}
	return pfn, vm.WalkOK
}

// Load builds the process image for prog: it maps and copies the text and
// data segments, maps the stack, and initialises the heap break. It returns
// the entry point and initial stack pointer for the core.
func (k *Kernel) Load(prog *asm.Program) (entry, sp uint32, err error) {
	if k.booted {
		return 0, 0, fmt.Errorf("kernel: process already loaded")
	}
	copySegment := func(base uint32, img []byte, writable bool) error {
		if base&(tlb.PageSize-1) != 0 {
			return fmt.Errorf("kernel: segment base %#x not page aligned", base)
		}
		pages := (len(img) + tlb.PageSize - 1) / tlb.PageSize
		for p := 0; p < pages; p++ {
			vpn := base>>tlb.PageShift + uint32(p)
			frame := k.mapPage(vpn, writable)
			lo := p * tlb.PageSize
			hi := lo + tlb.PageSize
			if hi > len(img) {
				hi = len(img)
			}
			k.ram.WriteBytes(frame<<tlb.PageShift, img[lo:hi])
		}
		return nil
	}
	if err := copySegment(prog.TextBase, prog.Text, false); err != nil {
		return 0, 0, err
	}
	if err := copySegment(prog.DataBase, prog.Data, true); err != nil {
		return 0, 0, err
	}
	for vpn := uint32(StackTop-StackSize) >> tlb.PageShift; vpn < StackTop>>tlb.PageShift; vpn++ {
		k.mapPage(vpn, true)
	}
	dataEnd := prog.DataBase + uint32(len(prog.Data))
	k.heapStart = (dataEnd + tlb.PageSize - 1) &^ (tlb.PageSize - 1)
	k.brk = k.heapStart
	k.booted = true
	return prog.Entry, StackTop, nil
}

// Syscall implements cpu.OS. It dispatches on r7 with arguments in r0-r2,
// following the ARM EABI convention.
func (k *Kernel) Syscall(c *cpu.Core) (uint32, cpu.SysAction) {
	k.dirty = true
	num := c.ArchReg(isa.RegSys)
	switch num {
	case SysExit:
		k.ExitCode = c.ArchReg(0)
		return 0, cpu.SysExit
	case SysWrite:
		return k.sysWrite(c.ArchReg(0), c.ArchReg(1), c.ArchReg(2))
	case SysBrk:
		return k.sysBrk(c.ArchReg(0)), cpu.SysContinue
	default:
		k.KillMsg = fmt.Sprintf("bad syscall %d", num)
		return 0, cpu.SysKill
	}
}

func (k *Kernel) sysWrite(fd, buf, length uint32) (uint32, cpu.SysAction) {
	if fd != 1 && fd != 2 {
		k.KillMsg = fmt.Sprintf("write to bad fd %d", fd)
		return 0, cpu.SysKill
	}
	if length > MaxWriteLen {
		k.KillMsg = fmt.Sprintf("oversized write of %d bytes", length)
		return 0, cpu.SysKill
	}
	// Copy out page by page through the data cache.
	for n := uint32(0); n < length; {
		va := buf + n
		pfn, fault := k.translate(va >> tlb.PageShift)
		switch fault {
		case vm.WalkUnmapped:
			k.KillMsg = fmt.Sprintf("write from unmapped address %#x", va)
			return 0, cpu.SysKill
		case vm.WalkBadFrame:
			k.PanicMsg = fmt.Sprintf("corrupted PTE for address %#x", va)
			return 0, cpu.SysPanic
		}
		pa := pfn<<tlb.PageShift | va&(tlb.PageSize-1)
		chunk := tlb.PageSize - int(va&(tlb.PageSize-1))
		if rem := int(length - n); chunk > rem {
			chunk = rem
		}
		k.copyOut(pa, chunk)
		n += uint32(chunk)
	}
	return length, cpu.SysContinue
}

// copyOut appends chunk bytes at physical address pa to stdout, reading
// through the data cache so that cached (possibly corrupted) data is what
// the program output actually contains.
func (k *Kernel) copyOut(pa uint32, chunk int) {
	var line [64]byte
	for chunk > 0 {
		n := 64 - int(pa&63)
		if n > chunk {
			n = chunk
		}
		k.dcache.Read(pa, line[:n])
		if len(k.Stdout) < MaxStdout {
			room := MaxStdout - len(k.Stdout)
			if n <= room {
				k.Stdout = append(k.Stdout, line[:n]...)
			} else {
				k.Stdout = append(k.Stdout, line[:room]...)
				k.Truncated = true
			}
		} else {
			k.Truncated = true
		}
		pa += uint32(n)
		chunk -= n
	}
}

func (k *Kernel) sysBrk(newBrk uint32) uint32 {
	if newBrk == 0 || newBrk < k.heapStart || newBrk > HeapMax {
		return k.brk
	}
	for vpn := k.brkPage(); vpn < (newBrk+tlb.PageSize-1)>>tlb.PageShift; vpn++ {
		k.mapPage(vpn, true)
	}
	if newBrk > k.brk {
		k.brk = newBrk
	}
	return k.brk
}

func (k *Kernel) brkPage() uint32 {
	return (k.brk + tlb.PageSize - 1) >> tlb.PageShift
}

// Brk returns the current heap break (test use).
func (k *Kernel) Brk() uint32 { return k.brk }

// HeapStart returns the initial heap break (test use).
func (k *Kernel) HeapStart() uint32 { return k.heapStart }
