package kernel

import (
	"testing"

	"mbusim/internal/asm"
	"mbusim/internal/cache"
	"mbusim/internal/mem"
	"mbusim/internal/tlb"
	"mbusim/internal/vm"
)

func newKernelEnv() (*Kernel, *mem.RAM, *vm.Walker) {
	ram := mem.NewRAM(RAMSize)
	l2 := cache.New(cache.Config{Name: "L2", Size: 64 << 10, Ways: 8, LineSize: 64, Latency: 8, PABits: 23}, ram)
	l1d := cache.New(cache.Config{Name: "L1D", Size: 8 << 10, Ways: 4, LineSize: 64, Latency: 2, PABits: 23}, l2)
	k := New(ram, l2, l1d)
	w := vm.NewWalker(l2, k.PTRoot(), NumFrames)
	return k, ram, w
}

func mustProg(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadBuildsWorkingTranslations(t *testing.T) {
	k, ram, w := newKernelEnv()
	prog := mustProg(t, `
_start:
    nop
.data
val: .word 0x11223344
`)
	entry, sp, err := k.Load(prog)
	if err != nil {
		t.Fatal(err)
	}
	if entry != prog.Entry || sp != StackTop {
		t.Fatalf("entry=%#x sp=%#x", entry, sp)
	}
	// Text translates and holds the image.
	tr, _, fault := w.Walk(prog.TextBase >> tlb.PageShift)
	if fault != vm.WalkOK {
		t.Fatalf("text walk fault %v", fault)
	}
	if got := ram.ReadWord(tr.PFN << tlb.PageShift); got != uint32(prog.Text[0])|uint32(prog.Text[1])<<8|uint32(prog.Text[2])<<16|uint32(prog.Text[3])<<24 {
		t.Fatalf("text not loaded: %#x", got)
	}
	if tr.Writable {
		t.Fatal("text must be read-only")
	}
	// Data translates writable and holds the initializer.
	tr, _, fault = w.Walk(prog.DataBase >> tlb.PageShift)
	if fault != vm.WalkOK || !tr.Writable {
		t.Fatalf("data walk: %+v %v", tr, fault)
	}
	if got := ram.ReadWord(tr.PFN << tlb.PageShift); got != 0x11223344 {
		t.Fatalf("data not loaded: %#x", got)
	}
	// Stack pages are mapped.
	if _, _, fault = w.Walk((StackTop - 4) >> tlb.PageShift); fault != vm.WalkOK {
		t.Fatalf("stack walk fault %v", fault)
	}
	// Unmapped addresses fault.
	if _, _, fault = w.Walk(0x00D0_0000 >> tlb.PageShift); fault != vm.WalkUnmapped {
		t.Fatal("hole did not fault")
	}
	// Double load is rejected.
	if _, _, err := k.Load(prog); err == nil {
		t.Fatal("second load must fail")
	}
}

func TestBrkGrowsHeap(t *testing.T) {
	k, _, w := newKernelEnv()
	prog := mustProg(t, "_start: nop\n.data\n.space 100\n")
	if _, _, err := k.Load(prog); err != nil {
		t.Fatal(err)
	}
	base := k.Brk()
	if k.sysBrk(0) != base {
		t.Fatal("brk(0) must return the current break")
	}
	newBrk := base + 3*tlb.PageSize
	if got := k.sysBrk(newBrk); got != newBrk {
		t.Fatalf("brk grew to %#x, want %#x", got, newBrk)
	}
	if _, _, fault := w.Walk((newBrk - 4) >> tlb.PageShift); fault != vm.WalkOK {
		t.Fatal("new heap page not mapped")
	}
	// Shrinking or exceeding the limit is refused (current break returned).
	if got := k.sysBrk(base - tlb.PageSize); got != newBrk {
		t.Fatal("shrink should be refused")
	}
	if got := k.sysBrk(HeapMax + tlb.PageSize); got != newBrk {
		t.Fatal("overgrowth should be refused")
	}
}

func TestSysWriteCapturesOutput(t *testing.T) {
	k, _, _ := newKernelEnv()
	prog := mustProg(t, "_start: nop\n.data\nmsg: .ascii \"hello world\"\n")
	if _, _, err := k.Load(prog); err != nil {
		t.Fatal(err)
	}
	n, action := k.sysWrite(1, prog.DataBase, 11)
	if action != 0 || n != 11 {
		t.Fatalf("write returned %d action %v", n, action)
	}
	if string(k.Stdout) != "hello world" {
		t.Fatalf("stdout %q", k.Stdout)
	}
}

func TestSysWriteRejectsBadArgs(t *testing.T) {
	k, _, _ := newKernelEnv()
	prog := mustProg(t, "_start: nop\n")
	if _, _, err := k.Load(prog); err != nil {
		t.Fatal(err)
	}
	if _, action := k.sysWrite(7, prog.TextBase, 4); action == 0 {
		t.Fatal("bad fd accepted")
	}
	if _, action := k.sysWrite(1, 0x00D0_0000, 4); action == 0 {
		t.Fatal("unmapped buffer accepted")
	}
	if _, action := k.sysWrite(1, prog.TextBase, MaxWriteLen+1); action == 0 {
		t.Fatal("oversized write accepted")
	}
}

func TestFrameZeroReserved(t *testing.T) {
	k, _, _ := newKernelEnv()
	prog := mustProg(t, "_start: nop\n")
	if _, _, err := k.Load(prog); err != nil {
		t.Fatal(err)
	}
	// The root page table must not live in frame 0, and no mapping may
	// point there (a zero PTE must never alias real memory).
	if k.PTRoot() == 0 {
		t.Fatal("page table root in frame 0")
	}
}
